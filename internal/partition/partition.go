// Package partition models full disjoint partitionings of individuals
// over their protected attributes (Definition 1 of the paper) and the
// tree structure FaiRank's greedy algorithm and result panels use.
//
// A partitioning is tree-structured: each internal node splits its
// group on one protected attribute, with one child per attribute value
// present in the group; the leaves form the partitioning. Different
// subtrees may split on different attributes — that is what lets
// FaiRank find subgroup unfairness such as "Male-English vs Male-Indian
// vs Male-Other vs Female" (Figure 2 of the paper).
package partition

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/dataset"
)

// Cond is one protected-attribute condition on the path from the root
// to a group, e.g. gender=Male.
type Cond struct {
	Attr  string
	Value string
}

// String renders the condition as "attr=value".
func (c Cond) String() string { return c.Attr + "=" + c.Value }

// Key is the canonical identity of a group's condition set,
// independent of condition order. Groups produced by Split carry an
// interned key: a tag byte followed by 8-byte big-endian
// (attrIndex, code) pairs in ascending order, referencing the
// dataset's schema and per-column domains. Groups assembled by hand
// fall back to an escaped textual encoding under a different tag
// byte, so the two namespaces can never collide — and neither can two
// distinct condition sets, even when attribute values contain '|' or
// '=' (the old sort+join keys collided there).
type Key string

const (
	keyTagInterned = "\x01"
	keyTagEscaped  = "\x02"
)

// Group is a set of individuals (row indices into a dataset) defined
// by a conjunction of protected-attribute conditions.
type Group struct {
	Conds []Cond
	Rows  []int
	// key holds the interned canonical key when the group was produced
	// by Split; when empty, Key falls back to escaping the conditions.
	key Key
}

// Root returns the group of all rows of d with no conditions.
func Root(d *dataset.Dataset) Group { return Group{Rows: d.AllRows()} }

// Size returns the number of individuals in the group.
func (g Group) Size() int { return len(g.Rows) }

// Label renders the group's conditions, "ALL" for the root.
func (g Group) Label() string {
	if len(g.Conds) == 0 {
		return "ALL"
	}
	parts := make([]string, len(g.Conds))
	for i, c := range g.Conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Key returns a canonical identity for the group's condition set,
// independent of condition order. Used to cache histograms and
// distances across the search. Split-produced groups return their
// precomputed interned key at zero cost; hand-built groups pay for an
// escaped string encoding per call.
func (g Group) Key() Key {
	if g.key != "" || len(g.Conds) == 0 {
		return g.key
	}
	return escapedKey(g.Conds)
}

// SplitProduced reports whether the group came out of Split (directly
// or via Relabel), which guarantees its rows are exactly the dataset
// rows satisfying its conditions — the invariant condition-based
// optimizations (e.g. the engine's dirty-row cell index) rely on.
// Hand-assembled groups may pair arbitrary rows with arbitrary
// conditions and report false.
func (g Group) SplitProduced() bool { return g.key != "" }

// Relabel returns g with its condition list replaced by conds, which
// must hold the same conditions, possibly reordered: the canonical key
// is carried over unchanged. The quantification engine uses this to
// give memoized split children the caller's root-to-group path order.
func (g Group) Relabel(conds []Cond) Group {
	g.Conds = conds
	return g
}

// escapeInto appends s to b with '\\', '|' and '=' escaped, so the
// rendered condition list of one set can never equal that of another.
func escapeInto(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '|':
			b.WriteString(`\p`)
		case '=':
			b.WriteString(`\e`)
		default:
			b.WriteByte(s[i])
		}
	}
}

// escapedKey is the fallback canonical key for condition sets that
// carry no interned key: escaped "attr=value" renderings, sorted and
// joined.
func escapedKey(conds []Cond) Key {
	parts := make([]string, len(conds))
	for i, c := range conds {
		var b strings.Builder
		b.Grow(len(c.Attr) + len(c.Value) + 1)
		escapeInto(&b, c.Attr)
		b.WriteByte('=')
		escapeInto(&b, c.Value)
		parts[i] = b.String()
	}
	sort.Strings(parts)
	return Key(keyTagEscaped + strings.Join(parts, "|"))
}

// packCond encodes a condition as attrIndex<<32 | code.
func packCond(attrIdx, code int) uint64 {
	return uint64(uint32(attrIdx))<<32 | uint64(uint32(code))
}

// keyChunkAt decodes the 8-byte big-endian packed condition at offset
// i of an interned key body.
func keyChunkAt(s string, i int) uint64 {
	return uint64(s[i])<<56 | uint64(s[i+1])<<48 | uint64(s[i+2])<<40 | uint64(s[i+3])<<32 |
		uint64(s[i+4])<<24 | uint64(s[i+5])<<16 | uint64(s[i+6])<<8 | uint64(s[i+7])
}

// childKey builds the interned key of parent plus one (attrIdx, code)
// condition, inserting the packed pair into the parent's sorted chunk
// list via buf (reused scratch). It returns "" when the parent carries
// conditions but no interned key — such hand-built lineages stay on
// the escaped fallback.
func childKey(parent Group, buf []byte, attrIdx, code int) (Key, []byte) {
	if parent.key == "" && len(parent.Conds) > 0 {
		return "", buf
	}
	body := ""
	if parent.key != "" {
		body = string(parent.key)[1:]
	}
	packed := packCond(attrIdx, code)
	i := 0
	for i < len(body) && keyChunkAt(body, i) < packed {
		i += 8
	}
	buf = append(buf[:0], keyTagInterned...)
	buf = append(buf, body[:i]...)
	var enc [8]byte
	binary.BigEndian.PutUint64(enc[:], packed)
	buf = append(buf, enc[:]...)
	buf = append(buf, body[i:]...)
	return Key(buf), buf
}

// splitter holds the reusable counting-sort state behind Split and
// SplittableAttrs. Buffers are sized by the largest attribute domain
// seen and pooled, so the hot path allocates only its outputs. The
// counts buffer is all-zero between uses.
type splitter struct {
	counts []int // per-code row counts
	starts []int // per-code scatter cursors
	keyBuf []byte
}

var splitterPool = sync.Pool{New: func() any { return new(splitter) }}

// grow ensures the per-code buffers cover a domain of dom codes.
func (s *splitter) grow(dom int) {
	if len(s.counts) < dom {
		s.counts = make([]int, dom)
		s.starts = make([]int, dom)
	}
}

// Split divides g into one child per distinct value of attr among g's
// rows, ordered by value for determinism. The attribute must be
// categorical. A group in which attr takes a single value yields one
// child identical to g (callers treat that as unsplittable).
//
// The implementation is a two-pass counting sort over the column's
// codes: all children share one row backing and one condition backing
// (capacity-limited sub-slices, so appending to a child cannot bleed
// into a sibling), and each child carries its interned canonical key.
func Split(d *dataset.Dataset, g Group, attr string) ([]Group, error) {
	s := splitterPool.Get().(*splitter)
	out, err := s.split(d, g, attr)
	splitterPool.Put(s)
	return out, err
}

func (s *splitter) split(d *dataset.Dataset, g Group, attr string) ([]Group, error) {
	cv, err := d.Cat(attr)
	if err != nil {
		return nil, fmt.Errorf("partition: split on %q: %w", attr, err)
	}
	attrIdx, _ := d.Schema().Lookup(attr) // Cat succeeded, so attr exists
	dom := len(cv.Domain)
	s.grow(dom)
	counts, starts := s.counts, s.starts

	// Pass 1: count rows per code.
	for _, r := range g.Rows {
		if r < 0 || r >= len(cv.Codes) {
			for c := 0; c < dom; c++ { // restore the all-zero invariant
				counts[c] = 0
			}
			return nil, fmt.Errorf("partition: row %d out of range", r)
		}
		counts[cv.Codes[r]]++
	}

	// Child offsets in ascending-value order (deterministic output).
	k, total := 0, 0
	for _, c := range cv.ByValue {
		if counts[c] == 0 {
			continue
		}
		starts[c] = total
		total += counts[c]
		k++
	}

	// Pass 2: scatter rows, stable in g.Rows order, into one backing.
	rowsBacking := make([]int, len(g.Rows))
	for _, r := range g.Rows {
		c := cv.Codes[r]
		rowsBacking[starts[c]] = r
		starts[c]++
	}

	nc := len(g.Conds)
	condsBacking := make([]Cond, k*(nc+1))
	out := make([]Group, 0, k)
	for _, c := range cv.ByValue {
		if counts[c] == 0 {
			continue
		}
		hi := starts[c] // post-scatter cursor = end of this child's rows
		lo := hi - counts[c]
		conds := condsBacking[: nc+1 : nc+1]
		condsBacking = condsBacking[nc+1:]
		copy(conds, g.Conds)
		conds[nc] = Cond{Attr: attr, Value: cv.Domain[c]}
		var key Key
		key, s.keyBuf = childKey(g, s.keyBuf, attrIdx, c)
		out = append(out, Group{Conds: conds, Rows: rowsBacking[lo:hi:hi], key: key})
		counts[c] = 0
	}
	return out, nil
}

// SplittableAttrs returns the subset of attrs on which g can actually
// be split (categorical, ≥2 distinct values among g's rows, and every
// resulting child at least minSize rows).
func SplittableAttrs(d *dataset.Dataset, g Group, attrs []string, minSize int) ([]string, error) {
	s := splitterPool.Get().(*splitter)
	out, err := s.splittableAttrs(d, g, attrs, minSize)
	splitterPool.Put(s)
	return out, err
}

func (s *splitter) splittableAttrs(d *dataset.Dataset, g Group, attrs []string, minSize int) ([]string, error) {
	var out []string
	for _, attr := range attrs {
		cv, err := d.Cat(attr)
		if err != nil {
			return nil, fmt.Errorf("partition: %w", err)
		}
		dom := len(cv.Domain)
		s.grow(dom)
		counts := s.counts
		for _, r := range g.Rows {
			counts[cv.Codes[r]]++
		}
		distinct, ok := 0, true
		for c := 0; c < dom; c++ {
			if counts[c] == 0 {
				continue
			}
			distinct++
			if counts[c] < minSize {
				ok = false
			}
			counts[c] = 0
		}
		if distinct >= 2 && ok {
			out = append(out, attr)
		}
	}
	return out, nil
}

// Node is one node of a partitioning tree.
type Node struct {
	Group Group
	// SplitAttr is the attribute this node was split on; empty for
	// leaves.
	SplitAttr string
	Children  []*Node
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Tree is a partitioning tree over a dataset. Its leaves form a full
// disjoint partitioning of the root group's rows.
type Tree struct {
	Root *Node
	// NumRows is the size of the partitioned population, used by
	// Validate.
	NumRows int
}

// Leaves returns the leaf nodes in depth-first order, which is the
// partitioning the tree represents.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// LeafGroups returns the groups of the leaves.
func (t *Tree) LeafGroups() []Group {
	leaves := t.Leaves()
	out := make([]Group, len(leaves))
	for i, l := range leaves {
		out[i] = l.Group
	}
	return out
}

// Depth returns the maximum number of edges from the root to a leaf.
func (t *Tree) Depth() int {
	var depth func(n *Node) int
	depth = func(n *Node) int {
		d := 0
		for _, c := range n.Children {
			if cd := depth(c) + 1; cd > d {
				d = cd
			}
		}
		return d
	}
	if t.Root == nil {
		return 0
	}
	return depth(t.Root)
}

// Size returns the total number of nodes.
func (t *Tree) Size() int {
	var count func(n *Node) int
	count = func(n *Node) int {
		s := 1
		for _, c := range n.Children {
			s += count(c)
		}
		return s
	}
	if t.Root == nil {
		return 0
	}
	return count(t.Root)
}

// Validate checks the partitioning invariants the paper's Definition 1
// imposes: leaves are pairwise disjoint and their union covers the
// root population; each internal node's children partition its rows.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("partition: tree has no root")
	}
	seen := make([]bool, t.NumRows)
	covered := 0
	for _, leaf := range t.Leaves() {
		if leaf.Group.Size() == 0 {
			return fmt.Errorf("partition: empty leaf %q", leaf.Group.Label())
		}
		for _, r := range leaf.Group.Rows {
			if r < 0 || r >= len(seen) {
				return fmt.Errorf("partition: row %d out of range [0,%d)", r, len(seen))
			}
			if seen[r] {
				return fmt.Errorf("partition: row %d in multiple leaves", r)
			}
			seen[r] = true
			covered++
		}
	}
	if covered != t.NumRows {
		return fmt.Errorf("partition: leaves cover %d rows, population has %d", covered, t.NumRows)
	}
	var check func(n *Node) error
	check = func(n *Node) error {
		if n.IsLeaf() {
			if n.SplitAttr != "" {
				return fmt.Errorf("partition: leaf %q has split attribute %q", n.Group.Label(), n.SplitAttr)
			}
			return nil
		}
		if n.SplitAttr == "" {
			return fmt.Errorf("partition: internal node %q lacks split attribute", n.Group.Label())
		}
		total := 0
		for _, c := range n.Children {
			total += c.Group.Size()
			if err := check(c); err != nil {
				return err
			}
		}
		if total != n.Group.Size() {
			return fmt.Errorf("partition: node %q has %d rows but children hold %d", n.Group.Label(), n.Group.Size(), total)
		}
		return nil
	}
	return check(t.Root)
}

// String renders the tree with indentation, one node per line.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s (n=%d)", strings.Repeat("  ", depth), n.Group.Label(), n.Group.Size())
		if n.SplitAttr != "" {
			fmt.Fprintf(&b, " split:%s", n.SplitAttr)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 0)
	}
	return b.String()
}
