package partition

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func table1(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Table1()
}

func TestRootGroup(t *testing.T) {
	d := table1(t)
	g := Root(d)
	if g.Size() != 10 || g.Label() != "ALL" || g.Key() != "" {
		t.Errorf("root group wrong: %+v", g)
	}
}

func TestSplitGender(t *testing.T) {
	d := table1(t)
	children, err := Split(d, Root(d), dataset.AttrGender)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("gender split: %d children", len(children))
	}
	// Deterministic order: Female before Male.
	if children[0].Label() != "gender=Female" || children[1].Label() != "gender=Male" {
		t.Errorf("labels: %q, %q", children[0].Label(), children[1].Label())
	}
	if children[0].Size() != 4 || children[1].Size() != 6 {
		t.Errorf("sizes: %d, %d", children[0].Size(), children[1].Size())
	}
}

func TestSplitNested(t *testing.T) {
	d := table1(t)
	children, err := Split(d, Root(d), dataset.AttrGender)
	if err != nil {
		t.Fatal(err)
	}
	male := children[1]
	sub, err := Split(d, male, dataset.AttrLanguage)
	if err != nil {
		t.Fatal(err)
	}
	// Males speak English (4), Indian (1), Other (1) in Table 1.
	if len(sub) != 3 {
		t.Fatalf("male language split: %d children", len(sub))
	}
	sizes := map[string]int{}
	for _, c := range sub {
		sizes[c.Conds[len(c.Conds)-1].Value] = c.Size()
	}
	if sizes["English"] != 4 || sizes["Indian"] != 1 || sizes["Other"] != 1 {
		t.Errorf("male language sizes: %v", sizes)
	}
	if sub[0].Label() != "gender=Male ∧ language=English" {
		t.Errorf("nested label: %q", sub[0].Label())
	}
}

func TestSplitErrors(t *testing.T) {
	d := table1(t)
	if _, err := Split(d, Root(d), "nope"); err == nil {
		t.Error("unknown attr should error")
	}
	if _, err := Split(d, Root(d), dataset.AttrRating); err == nil {
		t.Error("numeric attr should error")
	}
	if _, err := Split(d, Group{Rows: []int{99}}, dataset.AttrGender); err == nil {
		t.Error("bad row should error")
	}
}

func TestGroupKeyOrderIndependent(t *testing.T) {
	a := Group{Conds: []Cond{{"gender", "Male"}, {"language", "English"}}}
	b := Group{Conds: []Cond{{"language", "English"}, {"gender", "Male"}}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}

func TestSplittableAttrs(t *testing.T) {
	d := table1(t)
	attrs, err := SplittableAttrs(d, Root(d), []string{dataset.AttrGender, dataset.AttrCountry, dataset.AttrLanguage}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 3 {
		t.Errorf("splittable: %v", attrs)
	}
	// Within the Female group, everyone's a single gender — gender not splittable.
	children, _ := Split(d, Root(d), dataset.AttrGender)
	female := children[0]
	attrs, err = SplittableAttrs(d, female, []string{dataset.AttrGender, dataset.AttrCountry}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 1 || attrs[0] != dataset.AttrCountry {
		t.Errorf("female splittable: %v", attrs)
	}
}

func TestSplittableAttrsMinSize(t *testing.T) {
	d := table1(t)
	// Language split of ALL yields groups of sizes 7,2,1 — minSize 2
	// should rule it out; gender split is 4/6 and stays.
	attrs, err := SplittableAttrs(d, Root(d), []string{dataset.AttrGender, dataset.AttrLanguage}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 1 || attrs[0] != dataset.AttrGender {
		t.Errorf("minSize splittable: %v", attrs)
	}
}

func TestSplittableAttrsError(t *testing.T) {
	d := table1(t)
	if _, err := SplittableAttrs(d, Root(d), []string{"nope"}, 1); err == nil {
		t.Error("unknown attr should error")
	}
}

// buildFigure2Tree constructs the partitioning of Figure 2 by hand:
// split on gender, then split the Male group on language.
func buildFigure2Tree(t *testing.T, d *dataset.Dataset) *Tree {
	t.Helper()
	root := &Node{Group: Root(d), SplitAttr: dataset.AttrGender}
	children, err := Split(d, root.Group, dataset.AttrGender)
	if err != nil {
		t.Fatal(err)
	}
	female := &Node{Group: children[0]}
	male := &Node{Group: children[1], SplitAttr: dataset.AttrLanguage}
	sub, err := Split(d, male.Group, dataset.AttrLanguage)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range sub {
		male.Children = append(male.Children, &Node{Group: g})
	}
	root.Children = []*Node{female, male}
	return &Tree{Root: root, NumRows: d.Len()}
}

func TestTreeLeavesAndValidate(t *testing.T) {
	d := table1(t)
	tree := buildFigure2Tree(t, d)
	if err := tree.Validate(); err != nil {
		t.Fatalf("figure 2 tree invalid: %v", err)
	}
	leaves := tree.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("leaves: %d", len(leaves))
	}
	labels := make([]string, len(leaves))
	for i, l := range leaves {
		labels[i] = l.Group.Label()
	}
	want := []string{
		"gender=Female",
		"gender=Male ∧ language=English",
		"gender=Male ∧ language=Indian",
		"gender=Male ∧ language=Other",
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Errorf("leaf %d = %q, want %q", i, labels[i], want[i])
		}
	}
	if tree.Depth() != 2 || tree.Size() != 6 {
		t.Errorf("depth=%d size=%d", tree.Depth(), tree.Size())
	}
	groups := tree.LeafGroups()
	if len(groups) != 4 || groups[0].Label() != "gender=Female" {
		t.Errorf("LeafGroups: %v", groups)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	d := table1(t)
	tree := buildFigure2Tree(t, d)
	// Corrupt: duplicate a row across leaves.
	leaves := tree.Leaves()
	leaves[0].Group.Rows = append(leaves[0].Group.Rows, leaves[1].Group.Rows[0])
	if err := tree.Validate(); err == nil {
		t.Error("overlapping leaves should fail validation")
	}
}

func TestValidateCatchesMissingRows(t *testing.T) {
	d := table1(t)
	tree := buildFigure2Tree(t, d)
	leaves := tree.Leaves()
	leaves[0].Group.Rows = leaves[0].Group.Rows[:1]
	if err := tree.Validate(); err == nil {
		t.Error("uncovered rows should fail validation")
	}
}

func TestValidateCatchesEmptyLeaf(t *testing.T) {
	tree := &Tree{Root: &Node{Group: Group{}}, NumRows: 0}
	if err := tree.Validate(); err == nil {
		t.Error("empty leaf should fail validation")
	}
}

func TestValidateCatchesBadSplitAttrs(t *testing.T) {
	d := table1(t)
	tree := buildFigure2Tree(t, d)
	// Leaf with a split attribute.
	tree.Root.Children[0].SplitAttr = "gender"
	if err := tree.Validate(); err == nil {
		t.Error("leaf with split attr should fail")
	}
	tree = buildFigure2Tree(t, d)
	tree.Root.SplitAttr = ""
	if err := tree.Validate(); err == nil {
		t.Error("internal node without split attr should fail")
	}
}

func TestValidateNilRoot(t *testing.T) {
	tree := &Tree{}
	if err := tree.Validate(); err == nil {
		t.Error("nil root should fail validation")
	}
}

func TestTreeString(t *testing.T) {
	d := table1(t)
	tree := buildFigure2Tree(t, d)
	s := tree.String()
	if !strings.Contains(s, "ALL (n=10) split:gender") {
		t.Errorf("tree string missing root: %q", s)
	}
	if !strings.Contains(s, "gender=Male ∧ language=Indian (n=1)") {
		t.Errorf("tree string missing leaf: %q", s)
	}
}

func TestEmptyTreeAccessors(t *testing.T) {
	tree := &Tree{}
	if len(tree.Leaves()) != 0 || tree.Depth() != 0 || tree.Size() != 0 {
		t.Error("empty tree accessors should be zero")
	}
}
