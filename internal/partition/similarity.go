package partition

import (
	"fmt"
)

// RandIndex measures the agreement between two partitionings of the
// same n individuals: the fraction of individual pairs on which the
// partitionings agree (both co-partition the pair, or both separate
// it). 1 means identical groupings, 0 means total disagreement.
//
// FaiRank compares partitionings constantly — score-based vs rank-only
// quantification, anonymized vs raw data, one scoring function vs
// another — and "same unfairness value" says nothing about whether the
// same people were grouped together. The Rand index makes those panel
// comparisons quantitative.
func RandIndex(a, b []Group, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("partition: RandIndex needs at least 2 individuals, got %d", n)
	}
	la, err := labelVector(a, n)
	if err != nil {
		return 0, fmt.Errorf("partition: first partitioning: %w", err)
	}
	lb, err := labelVector(b, n)
	if err != nil {
		return 0, fmt.Errorf("partition: second partitioning: %w", err)
	}
	agree := 0
	total := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := la[i] == la[j]
			sameB := lb[i] == lb[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total), nil
}

// labelVector assigns each row its group index, verifying the groups
// form a full disjoint partitioning of [0,n).
func labelVector(groups []Group, n int) ([]int, error) {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for gi, g := range groups {
		for _, r := range g.Rows {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("row %d outside population of %d", r, n)
			}
			if labels[r] != -1 {
				return nil, fmt.Errorf("row %d appears in multiple groups", r)
			}
			labels[r] = gi
		}
	}
	for r, l := range labels {
		if l == -1 {
			return nil, fmt.Errorf("row %d not covered", r)
		}
	}
	return labels, nil
}
