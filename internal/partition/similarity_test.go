package partition

import (
	"math"
	"testing"
)

func TestRandIndexIdentical(t *testing.T) {
	a := []Group{{Rows: []int{0, 1}}, {Rows: []int{2, 3}}}
	ri, err := RandIndex(a, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("identical partitionings: %g", ri)
	}
}

func TestRandIndexRefinementInsensitiveToLabels(t *testing.T) {
	// Same grouping listed in a different order must score 1.
	a := []Group{{Rows: []int{0, 1}}, {Rows: []int{2, 3}}}
	b := []Group{{Rows: []int{3, 2}}, {Rows: []int{1, 0}}}
	ri, err := RandIndex(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 1 {
		t.Errorf("relabeled partitionings: %g", ri)
	}
}

func TestRandIndexDisagreement(t *testing.T) {
	a := []Group{{Rows: []int{0, 1}}, {Rows: []int{2, 3}}}
	b := []Group{{Rows: []int{0, 2}}, {Rows: []int{1, 3}}}
	ri, err := RandIndex(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (0,1) a:same b:diff ✗; (0,2) a:diff b:same ✗; (0,3) diff/diff ✓;
	// (1,2) diff/diff ✓; (1,3) diff/same ✗; (2,3) same/diff ✗ -> 2/6.
	if math.Abs(ri-2.0/6) > 1e-12 {
		t.Errorf("cross partitionings: %g, want %g", ri, 2.0/6)
	}
}

func TestRandIndexTrivialVsFull(t *testing.T) {
	// One big group vs all singletons: agreement 0.
	a := []Group{{Rows: []int{0, 1, 2}}}
	b := []Group{{Rows: []int{0}}, {Rows: []int{1}}, {Rows: []int{2}}}
	ri, err := RandIndex(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ri != 0 {
		t.Errorf("trivial vs singleton: %g", ri)
	}
}

func TestRandIndexErrors(t *testing.T) {
	good := []Group{{Rows: []int{0}}, {Rows: []int{1}}}
	if _, err := RandIndex(good, good, 1); err == nil {
		t.Error("n<2 should error")
	}
	if _, err := RandIndex([]Group{{Rows: []int{0}}}, good, 2); err == nil {
		t.Error("uncovered row should error")
	}
	if _, err := RandIndex([]Group{{Rows: []int{0, 0}}, {Rows: []int{1}}}, good, 2); err == nil {
		t.Error("duplicate row should error")
	}
	if _, err := RandIndex([]Group{{Rows: []int{0, 5}}}, good, 2); err == nil {
		t.Error("out-of-range row should error")
	}
}
