package partition

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/marketplace"
)

// benchPopulation builds a synthetic population for split benchmarks:
// 4 protected attributes × 4 values each.
func benchPopulation(b *testing.B, n int) *dataset.Dataset {
	b.Helper()
	spec := marketplace.PopulationSpec{
		N:      n,
		Skills: []marketplace.SkillSpec{{Name: "skill", Mean: 0.55, StdDev: 0.18}},
	}
	for a := 0; a < 4; a++ {
		attr := marketplace.AttrSpec{Name: fmt.Sprintf("p%d", a+1)}
		for v := 0; v < 4; v++ {
			attr.Values = append(attr.Values, fmt.Sprintf("v%d", v+1))
		}
		spec.Protected = append(spec.Protected, attr)
	}
	d, err := marketplace.Generate(spec, 3)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkSplit measures dividing a group into per-value children,
// the inner operation of every candidate-split evaluation.
func BenchmarkSplit(b *testing.B) {
	for _, n := range []int{1000, 20000} {
		d := benchPopulation(b, n)
		root := Root(d)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Split(d, root, "p1"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSplittableAttrs measures the splittability scan the greedy
// recursion runs at every node.
func BenchmarkSplittableAttrs(b *testing.B) {
	d := benchPopulation(b, 20000)
	root := Root(d)
	attrs := []string{"p1", "p2", "p3", "p4"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SplittableAttrs(d, root, attrs, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupKey measures canonical key construction for a
// deeply-conditioned group, the identity every memo lookup hashes.
func BenchmarkGroupKey(b *testing.B) {
	d := benchPopulation(b, 1000)
	g := Root(d)
	for _, attr := range []string{"p1", "p2", "p3", "p4"} {
		children, err := Split(d, g, attr)
		if err != nil {
			b.Fatal(err)
		}
		g = children[0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Key() == "" {
			b.Fatal("empty key")
		}
	}
}
