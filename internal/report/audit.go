package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/marketplace"
	"repro/internal/scoring"
)

// JobAudit is the auditor's finding for one job of a marketplace: its
// most unfair partitioning and the groups it favors — the per-job row
// of the "fairness report" the AUDITOR scenario drafts (paper §4).
type JobAudit struct {
	Job          string
	Function     string
	Unfairness   float64
	Partitions   int
	MostFavored  string
	LeastFavored string
	Elapsed      time.Duration
	Result       *core.Result
	Scores       []float64
}

// AuditMarketplace quantifies every job of a marketplace under cfg and
// returns one JobAudit per job, in the marketplace's job order.
func AuditMarketplace(m *marketplace.Marketplace, cfg core.Config) ([]JobAudit, error) {
	if m == nil || len(m.Jobs) == 0 {
		return nil, fmt.Errorf("report: marketplace has no jobs to audit")
	}
	audits := make([]JobAudit, 0, len(m.Jobs))
	for _, job := range m.Jobs {
		audit, err := auditOneJob(m, job, cfg)
		if err != nil {
			return nil, err
		}
		audits = append(audits, audit)
	}
	return audits, nil
}

// AuditRankOnly repeats an audit in the rank-only transparency
// setting: the auditor sees each job's ranking but not its scoring
// function, so pseudo-scores derived from ranks replace true scores.
func AuditRankOnly(m *marketplace.Marketplace, cfg core.Config) ([]JobAudit, error) {
	if m == nil || len(m.Jobs) == 0 {
		return nil, fmt.Errorf("report: marketplace has no jobs to audit")
	}
	audits := make([]JobAudit, 0, len(m.Jobs))
	for _, job := range m.Jobs {
		scores, err := job.Function.Score(m.Workers)
		if err != nil {
			return nil, fmt.Errorf("report: scoring job %q: %w", job.Name, err)
		}
		pseudo, err := scoring.PseudoScores(scores)
		if err != nil {
			return nil, fmt.Errorf("report: ranking job %q: %w", job.Name, err)
		}
		res, err := core.Quantify(m.Workers, pseudo, cfg)
		if err != nil {
			return nil, fmt.Errorf("report: quantifying job %q: %w", job.Name, err)
		}
		most, least := FavoredGroups(res, pseudo)
		audits = append(audits, JobAudit{
			Job:          job.Name,
			Function:     "[hidden — ranking only]",
			Unfairness:   res.Unfairness,
			Partitions:   len(res.Groups),
			MostFavored:  most,
			LeastFavored: least,
			Elapsed:      res.Stats.Elapsed,
			Result:       res,
			Scores:       pseudo,
		})
	}
	return audits, nil
}

// AuditTable renders a batch audit — the quantify → mitigate →
// re-audit loop over every job — for the terminal: the per-job
// before/after fairness and utility-loss table, then the
// marketplace-level rollups (worst jobs, attribute hotspots,
// infeasible tally, means).
func AuditTable(r *audit.Report) (string, error) {
	if r == nil || len(r.Jobs) == 0 {
		return "", fmt.Errorf("report: empty audit report")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "MARKETPLACE AUDIT — %q (%d jobs, strategy %s, top-%d)\n\n",
		r.Marketplace, len(r.Jobs), r.Strategy, r.K)

	rows := make([][]string, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if j.Infeasible {
			rows = append(rows, []string{
				j.Job,
				fmt.Sprintf("%.4f", j.QuantifiedBefore), "infeasible",
				fmt.Sprintf("%.4f", j.Before.ParityGap), "—",
				"—", "—",
			})
			continue
		}
		rows = append(rows, []string{
			j.Job,
			fmt.Sprintf("%.4f", j.QuantifiedBefore), fmt.Sprintf("%.4f", j.QuantifiedAfter),
			fmt.Sprintf("%.4f", j.Before.ParityGap), fmt.Sprintf("%.4f", j.After.ParityGap),
			fmt.Sprintf("%.4f", j.Utility.NDCG), fmt.Sprintf("%.4f", j.Utility.MeanDisplacement),
		})
	}
	b.WriteString(TextTable(
		[]string{"job", "unfair before", "unfair after", fmt.Sprintf("gap@%d before", r.K), "gap after", fmt.Sprintf("NDCG@%d", r.K), "score displ."},
		rows,
	))

	fmt.Fprintf(&b, "\nworst %d job(s): %s\n", len(r.Worst), strings.Join(r.Worst, ", "))
	if len(r.Hotspots) > 0 {
		parts := make([]string, 0, len(r.Hotspots))
		for _, h := range r.Hotspots {
			parts = append(parts, fmt.Sprintf("%s (%d)", h.Attribute, h.Jobs))
		}
		fmt.Fprintf(&b, "hotspot attributes: %s\n", strings.Join(parts, ", "))
	}
	if r.Infeasible > 0 {
		fmt.Fprintf(&b, "infeasible targets: %d of %d jobs\n", r.Infeasible, len(r.Jobs))
	}
	fmt.Fprintf(&b, "mean unfairness   : %.4f -> %.4f\n", r.MeanUnfairnessBefore, r.MeanUnfairnessAfter)
	fmt.Fprintf(&b, "mean top-%d gap    : %.4f -> %.4f\n", r.K, r.MeanParityGapBefore, r.MeanParityGapAfter)
	fmt.Fprintf(&b, "utility cost      : NDCG@%d %.4f, mean score displacement %.4f\n",
		r.K, r.MeanNDCG, r.MeanDisplacement)
	if r.MeanExpectedRatio > 0 {
		fmt.Fprintf(&b, "expected exposure : mean worst ratio %.4f in expectation (stochastic strategy; per-sample ratios vary)\n",
			r.MeanExpectedRatio)
	}
	return b.String(), nil
}

// AuditDiffTable renders a longitudinal audit diff — what moved
// between two audits of the same configuration — for the terminal:
// the changed jobs with their fairness and utility deltas, the
// feasibility flips, added/removed jobs, and the marketplace-level
// mean movements. A stable diff renders as a one-line all-clear.
func AuditDiffTable(d *audit.Diff) (string, error) {
	if d == nil {
		return "", fmt.Errorf("report: nil audit diff")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "AUDIT DIFF — strategy %s, top-%d (%d jobs compared)\n\n",
		d.Strategy, d.K, len(d.Jobs))
	if d.Stable() {
		b.WriteString("no drift: every job reproduces the stored audit exactly\n")
		return b.String(), nil
	}

	delta := func(v float64) string {
		return fmt.Sprintf("%+.4f", v)
	}
	rows := make([][]string, 0, d.Changed)
	for _, jd := range d.Jobs {
		if !jd.Changed {
			continue
		}
		status := "drifted"
		switch {
		case jd.NowInfeasible && !jd.WasInfeasible:
			status = "newly infeasible"
		case jd.WasInfeasible && !jd.NowInfeasible:
			status = "now feasible"
		case jd.Regressed:
			status = "regressed"
		case jd.Improved:
			status = "improved"
		}
		after := fmt.Sprintf("%.4f -> %.4f", jd.OldAfter, jd.NewAfter)
		if jd.NowInfeasible {
			after = fmt.Sprintf("%.4f -> infeasible", jd.OldAfter)
		}
		rows = append(rows, []string{
			jd.Job,
			fmt.Sprintf("%.4f -> %.4f", jd.OldBefore, jd.NewBefore),
			after,
			delta(jd.DeltaParityGapAfter),
			delta(jd.DeltaNDCG),
			status,
		})
	}
	b.WriteString(TextTable(
		[]string{"job", "unfair before", "unfair after", "Δ gap", "Δ NDCG", "status"},
		rows,
	))

	unchanged := len(d.Jobs) - d.Changed
	fmt.Fprintf(&b, "\n%d job(s) changed, %d unchanged\n", d.Changed, unchanged)
	if len(d.Regressed) > 0 {
		fmt.Fprintf(&b, "regressed: %s\n", strings.Join(d.Regressed, ", "))
	}
	if len(d.Improved) > 0 {
		fmt.Fprintf(&b, "improved : %s\n", strings.Join(d.Improved, ", "))
	}
	if len(d.NewlyInfeasible) > 0 {
		fmt.Fprintf(&b, "newly infeasible: %s\n", strings.Join(d.NewlyInfeasible, ", "))
	}
	if len(d.NowFeasible) > 0 {
		fmt.Fprintf(&b, "now feasible: %s\n", strings.Join(d.NowFeasible, ", "))
	}
	if len(d.Added) > 0 {
		fmt.Fprintf(&b, "added jobs  : %s\n", strings.Join(d.Added, ", "))
	}
	if len(d.Removed) > 0 {
		fmt.Fprintf(&b, "removed jobs: %s\n", strings.Join(d.Removed, ", "))
	}
	fmt.Fprintf(&b, "Δ mean unfairness after: %s\n", delta(d.DeltaMeanUnfairnessAfter))
	fmt.Fprintf(&b, "Δ mean top-%d gap after : %s\n", d.K, delta(d.DeltaMeanParityGapAfter))
	fmt.Fprintf(&b, "Δ mean NDCG@%d          : %s\n", d.K, delta(d.DeltaMeanNDCG))
	return b.String(), nil
}

// RenderAudit renders the auditor's marketplace-wide fairness report.
func RenderAudit(marketplaceName string, audits []JobAudit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAIRNESS REPORT — marketplace %q\n\n", marketplaceName)
	rows := make([][]string, 0, len(audits))
	for _, a := range audits {
		rows = append(rows, []string{
			a.Job,
			fmt.Sprintf("%.4f", a.Unfairness),
			fmt.Sprintf("%d", a.Partitions),
			a.MostFavored,
			a.LeastFavored,
		})
	}
	b.WriteString(TextTable(
		[]string{"job", "unfairness", "groups", "most favored", "least favored"},
		rows,
	))
	// Rank jobs by unfairness for the headline.
	worst, worstVal := "", -1.0
	for _, a := range audits {
		if a.Unfairness > worstVal {
			worst, worstVal = a.Job, a.Unfairness
		}
	}
	fmt.Fprintf(&b, "\nmost problematic job: %q (unfairness %.4f)\n", worst, worstVal)
	return b.String()
}
