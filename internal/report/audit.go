package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/marketplace"
	"repro/internal/scoring"
)

// JobAudit is the auditor's finding for one job of a marketplace: its
// most unfair partitioning and the groups it favors — the per-job row
// of the "fairness report" the AUDITOR scenario drafts (paper §4).
type JobAudit struct {
	Job          string
	Function     string
	Unfairness   float64
	Partitions   int
	MostFavored  string
	LeastFavored string
	Elapsed      time.Duration
	Result       *core.Result
	Scores       []float64
}

// AuditMarketplace quantifies every job of a marketplace under cfg and
// returns one JobAudit per job, in the marketplace's job order.
func AuditMarketplace(m *marketplace.Marketplace, cfg core.Config) ([]JobAudit, error) {
	if m == nil || len(m.Jobs) == 0 {
		return nil, fmt.Errorf("report: marketplace has no jobs to audit")
	}
	audits := make([]JobAudit, 0, len(m.Jobs))
	for _, job := range m.Jobs {
		audit, err := auditOneJob(m, job, cfg)
		if err != nil {
			return nil, err
		}
		audits = append(audits, audit)
	}
	return audits, nil
}

// AuditRankOnly repeats an audit in the rank-only transparency
// setting: the auditor sees each job's ranking but not its scoring
// function, so pseudo-scores derived from ranks replace true scores.
func AuditRankOnly(m *marketplace.Marketplace, cfg core.Config) ([]JobAudit, error) {
	if m == nil || len(m.Jobs) == 0 {
		return nil, fmt.Errorf("report: marketplace has no jobs to audit")
	}
	audits := make([]JobAudit, 0, len(m.Jobs))
	for _, job := range m.Jobs {
		scores, err := job.Function.Score(m.Workers)
		if err != nil {
			return nil, fmt.Errorf("report: scoring job %q: %w", job.Name, err)
		}
		pseudo, err := scoring.PseudoScores(scores)
		if err != nil {
			return nil, fmt.Errorf("report: ranking job %q: %w", job.Name, err)
		}
		res, err := core.Quantify(m.Workers, pseudo, cfg)
		if err != nil {
			return nil, fmt.Errorf("report: quantifying job %q: %w", job.Name, err)
		}
		most, least := FavoredGroups(res, pseudo)
		audits = append(audits, JobAudit{
			Job:          job.Name,
			Function:     "[hidden — ranking only]",
			Unfairness:   res.Unfairness,
			Partitions:   len(res.Groups),
			MostFavored:  most,
			LeastFavored: least,
			Elapsed:      res.Stats.Elapsed,
			Result:       res,
			Scores:       pseudo,
		})
	}
	return audits, nil
}

// RenderAudit renders the auditor's marketplace-wide fairness report.
func RenderAudit(marketplaceName string, audits []JobAudit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FAIRNESS REPORT — marketplace %q\n\n", marketplaceName)
	rows := make([][]string, 0, len(audits))
	for _, a := range audits {
		rows = append(rows, []string{
			a.Job,
			fmt.Sprintf("%.4f", a.Unfairness),
			fmt.Sprintf("%d", a.Partitions),
			a.MostFavored,
			a.LeastFavored,
		})
	}
	b.WriteString(TextTable(
		[]string{"job", "unfairness", "groups", "most favored", "least favored"},
		rows,
	))
	// Rank jobs by unfairness for the headline.
	worst, worstVal := "", -1.0
	for _, a := range audits {
		if a.Unfairness > worstVal {
			worst, worstVal = a.Job, a.Unfairness
		}
	}
	fmt.Fprintf(&b, "\nmost problematic job: %q (unfairness %.4f)\n", worst, worstVal)
	return b.String()
}
