package report

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/mitigate"
)

// syntheticReports builds an old/new audit pair with every kind of
// drift the diff table renders: a stable job, a regressed job, an
// improved job, a newly infeasible job, plus one added and one
// removed job.
func syntheticReports() (*audit.Report, *audit.Report) {
	job := func(name string, before, after float64, infeasible bool) audit.JobReport {
		j := audit.JobReport{
			Job:              name,
			Function:         "f",
			QuantifiedBefore: before,
			QuantifiedAfter:  after,
			Before:           mitigate.Metrics{ParityGap: before / 2},
			After:            mitigate.Metrics{ParityGap: after / 2},
			Utility:          mitigate.Utility{NDCG: 0.99},
		}
		if infeasible {
			j.QuantifiedAfter = 0
			j.After = mitigate.Metrics{}
			j.Utility = mitigate.Utility{}
			j.Infeasible = true
			j.Detail = "unsatisfiable"
		}
		return j
	}
	old := &audit.Report{
		Strategy: "detcons", K: 10,
		Jobs: []audit.JobReport{
			job("stable", 0.5, 0.2, false),
			job("regressor", 0.5, 0.2, false),
			job("improver", 0.5, 0.3, false),
			job("flipper", 0.5, 0.2, false),
			job("retired", 0.4, 0.1, false),
		},
		MeanUnfairnessAfter: 0.2, MeanParityGapAfter: 0.1, MeanNDCG: 0.99,
	}
	new := &audit.Report{
		Strategy: "detcons", K: 10,
		Jobs: []audit.JobReport{
			job("stable", 0.5, 0.2, false),
			job("regressor", 0.6, 0.4, false),
			job("improver", 0.5, 0.1, false),
			job("flipper", 0.5, 0, true),
			job("hired", 0.3, 0.1, false),
		},
		MeanUnfairnessAfter: 0.25, MeanParityGapAfter: 0.12, MeanNDCG: 0.98,
	}
	return old, new
}

func TestAuditDiffTable(t *testing.T) {
	old, new := syntheticReports()
	d, err := audit.Compare(old, new)
	if err != nil {
		t.Fatal(err)
	}
	text, err := AuditDiffTable(d)
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"AUDIT DIFF", "strategy detcons", "top-10",
		"regressed: flipper, regressor", // feasibility flips outrank numeric drift
		"improved : improver",
		"newly infeasible: flipper",
		"added jobs  : hired",
		"removed jobs: retired",
		"3 job(s) changed, 1 unchanged",
		"0.2000 -> 0.4000", // the regressor's after movement
		"-> infeasible",    // the flipper's after cell
		"Δ mean NDCG@10",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("diff table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "stable") {
		t.Errorf("unchanged job rendered in the drift table:\n%s", text)
	}

	// A diff of identical reports is the one-line all-clear.
	same, err := audit.Compare(old, old)
	if err != nil {
		t.Fatal(err)
	}
	clear, err := AuditDiffTable(same)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clear, "no drift") {
		t.Errorf("stable diff not rendered as all-clear:\n%s", clear)
	}

	if _, err := AuditDiffTable(nil); err == nil {
		t.Error("nil diff accepted")
	}
}
