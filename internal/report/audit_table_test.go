package report

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/marketplace"
	"repro/internal/mitigate"
)

func TestAuditTable(t *testing.T) {
	m, err := marketplace.PresetByName("crowdsourcing", 250, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := audit.Run(m, core.Config{}, audit.Options{Strategy: "detcons", TopN: 2})
	if err != nil {
		t.Fatal(err)
	}
	text, err := AuditTable(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"MARKETPLACE AUDIT",
		`"crowdsourcing"`,
		"strategy detcons",
		"translation", "data-entry", "writing", "moderation",
		"unfair before", "unfair after",
		"NDCG@10",
		"worst 2 job(s)",
		"hotspot attributes",
		"utility cost",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("audit table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "infeasible targets") {
		t.Errorf("feasible audit renders an infeasible tally:\n%s", text)
	}
}

func TestAuditTableInfeasibleRow(t *testing.T) {
	r := &audit.Report{
		Marketplace: "x",
		Strategy:    "detcons",
		K:           10,
		Jobs: []audit.JobReport{
			{Job: "broken", QuantifiedBefore: 0.3,
				Before:     mitigate.Metrics{ParityGap: 0.5},
				Infeasible: true, Detail: "floor exceeds group"},
		},
		Worst:      []string{"broken"},
		Infeasible: 1,
	}
	text, err := AuditTable(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "infeasible targets: 1 of 1 jobs") || !strings.Contains(text, "infeasible") {
		t.Errorf("infeasible tally missing:\n%s", text)
	}
}

func TestAuditTableEmpty(t *testing.T) {
	if _, err := AuditTable(nil); err == nil {
		t.Error("nil report should error")
	}
	if _, err := AuditTable(&audit.Report{}); err == nil {
		t.Error("empty report should error")
	}
}
