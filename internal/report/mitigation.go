package report

import (
	"fmt"
	"strings"

	"repro/internal/mitigate"
)

// MitigationTable renders a completed quantify → mitigate →
// re-quantify loop: the headline before/after comparison on the
// partitioning under repair, the per-group ranking statistics both
// sides, and the re-quantified worst partitioning of the mitigated
// ranking.
func MitigationTable(o *mitigate.Outcome) (string, error) {
	if o == nil || len(o.GroupLabels) == 0 {
		return "", fmt.Errorf("report: empty mitigation outcome")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "mitigation : %s (top-%d", o.Strategy, o.K)
	if len(o.Targets) > 0 {
		fmt.Fprint(&b, ", targets")
		for i, p := range o.Targets {
			if i > 0 {
				fmt.Fprint(&b, " /")
			}
			fmt.Fprintf(&b, " %.2f", p)
		}
	}
	fmt.Fprint(&b, ")\n")
	if desc := mitigate.Describe(o.Strategy); desc != "" {
		fmt.Fprintf(&b, "strategy   : %s\n", desc)
	}
	fmt.Fprintf(&b, "repairing  : %d-group partitioning found most unfair (%.4f %s)\n\n",
		len(o.GroupLabels), o.BeforeResult.Unfairness, o.BeforeResult.Measure.Name())

	delta := func(before, after float64) string {
		return fmt.Sprintf("%+.4f", after-before)
	}
	b.WriteString(TextTable(
		[]string{"measure", "before", "after", "delta"},
		[][]string{
			{fmt.Sprintf("top-%d parity gap (0 = parity)", o.K),
				fmt.Sprintf("%.4f", o.Before.ParityGap), fmt.Sprintf("%.4f", o.After.ParityGap),
				delta(o.Before.ParityGap, o.After.ParityGap)},
			{"worst exposure ratio (1 = equal)",
				fmt.Sprintf("%.4f", o.Before.ExposureRatio), fmt.Sprintf("%.4f", o.After.ExposureRatio),
				delta(o.Before.ExposureRatio, o.After.ExposureRatio)},
			{"unfairness of this partitioning (rank-normalized)",
				fmt.Sprintf("%.4f", o.Before.Unfairness), fmt.Sprintf("%.4f", o.After.Unfairness),
				delta(o.Before.Unfairness, o.After.Unfairness)},
			{"re-quantified most-unfair partitioning",
				fmt.Sprintf("%.4f", o.BeforeResult.Unfairness), fmt.Sprintf("%.4f", o.AfterResult.Unfairness),
				delta(o.BeforeResult.Unfairness, o.AfterResult.Unfairness)},
			{fmt.Sprintf("utility: NDCG@%d (1 = no loss)", o.K),
				"1.0000", fmt.Sprintf("%.4f", o.Utility.NDCG),
				delta(1, o.Utility.NDCG)},
			{fmt.Sprintf("utility: mean top-%d score displacement", o.K),
				"0.0000", fmt.Sprintf("%.4f", o.Utility.MeanDisplacement),
				delta(0, o.Utility.MeanDisplacement)},
		},
	))
	b.WriteString("\n")

	rows := make([][]string, len(o.GroupLabels))
	for i, label := range o.GroupLabels {
		bs, as := o.Before.Stats[i], o.After.Stats[i]
		// The exposure strategy enforces a ratio floor, not
		// representation targets: its Targets is nil and the column
		// must not present unenforced proportions as enforced.
		target := "—"
		if len(o.Targets) > 0 {
			target = fmt.Sprintf("%.3f", o.Targets[i])
		}
		rows[i] = []string{
			label,
			fmt.Sprintf("%d", bs.Size),
			target,
			fmt.Sprintf("%d → %d", bs.TopKCount, as.TopKCount),
			fmt.Sprintf("%.3f → %.3f", bs.SelectionRate, as.SelectionRate),
			fmt.Sprintf("%.3f → %.3f", bs.Exposure, as.Exposure),
		}
	}
	b.WriteString(TextTable(
		[]string{"partition", "n", "target", "in top-k", "selection rate", "exposure"},
		rows,
	))
	fmt.Fprintf(&b, "\nre-quantify: the mitigated ranking's most unfair partitioning has %d groups (%.4f)\n",
		len(o.AfterResult.Groups), o.AfterResult.Unfairness)

	// Stochastic strategies carry a whole distribution: report the
	// mixture's expected-exposure guarantee next to the realization the
	// tables above describe, so a single unlucky sample is never read
	// as the strategy's promise.
	if d := o.Distribution; d != nil {
		fmt.Fprintf(&b, "\ndistribution: %d ranking(s), seed %d, sampled #%d (weight %.4f)\n",
			len(d.Rankings), d.Seed, d.Sampled+1, d.Weights[d.Sampled])
		fmt.Fprintf(&b, "expected exposure ratio: %.4f (the LP floor holds in expectation; the sampled ranking above may sit below it)\n",
			d.ExpectedRatio)
		rows := make([][]string, len(o.GroupLabels))
		for i, label := range o.GroupLabels {
			rows[i] = []string{label, fmt.Sprintf("%.4f", d.ExpectedExposure[i])}
		}
		b.WriteString(TextTable([]string{"partition", "expected exposure"}, rows))
	}
	return b.String(), nil
}
