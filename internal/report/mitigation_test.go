package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/marketplace"
	"repro/internal/mitigate"
	"repro/internal/scoring"
)

func table1Outcome(t *testing.T) *mitigate.Outcome {
	t.Helper()
	d := dataset.Table1()
	fn, err := scoring.NewLinear(dataset.Table1Weights())
	if err != nil {
		t.Fatal(err)
	}
	scores, err := fn.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	o, err := mitigate.Evaluate(d, scores, core.Config{
		Attributes: []string{dataset.AttrGender, dataset.AttrLanguage},
	}, mitigate.Options{Strategy: "fair", K: 5})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestMitigationTable(t *testing.T) {
	o := table1Outcome(t)
	text, err := MitigationTable(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"mitigation : fair (top-5",
		"top-5 parity gap",
		"worst exposure ratio",
		"re-quantified most-unfair partitioning",
		"partition",
		"in top-k",
		"re-quantify:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	// One row per discovered partition.
	for _, label := range o.GroupLabels {
		if !strings.Contains(text, label) {
			t.Errorf("table missing group %q:\n%s", label, text)
		}
	}
}

func TestMitigationTableEmpty(t *testing.T) {
	if _, err := MitigationTable(nil); err == nil {
		t.Error("nil outcome accepted")
	}
	if _, err := MitigationTable(&mitigate.Outcome{}); err == nil {
		t.Error("empty outcome accepted")
	}
}

// Every name mitigate.Strategies() registers must survive the full
// Evaluate → MitigationTable path and announce itself (with its
// description) in the header — the table is derived from the registry,
// never from a hand-maintained list.
func TestMitigationTableEveryStrategy(t *testing.T) {
	m, err := marketplace.PresetByName("crowdsourcing", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := m.Score("translation")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Attributes: []string{"gender"}, MaxDepth: 1}
	for _, name := range mitigate.Strategies() {
		o, err := mitigate.Evaluate(m.Workers, scores, cfg, mitigate.Options{Strategy: name, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text, err := MitigationTable(o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(text, "mitigation : "+name+" (") {
			t.Errorf("%s: table header missing the strategy name:\n%s", name, text)
		}
		desc := mitigate.Describe(name)
		if desc == "" {
			t.Errorf("%s: no registered description", name)
		} else if !strings.Contains(text, desc) {
			t.Errorf("%s: table missing the strategy description %q", name, desc)
		}
	}
}

// Stochastic outcomes render their distribution block: support size,
// seed, sampled component, and the in-expectation exposure guarantee
// next to the realized numbers.
func TestMitigationTableDistribution(t *testing.T) {
	m, err := marketplace.PresetByName("crowdsourcing", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := m.Score("translation")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Attributes: []string{"gender"}, MaxDepth: 1}
	o, err := mitigate.Evaluate(m.Workers, scores, cfg, mitigate.Options{Strategy: "exposure-lp", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	text, err := MitigationTable(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"distribution:",
		"seed 5",
		"expected exposure ratio:",
		"expected exposure",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("distribution section missing %q:\n%s", want, text)
		}
	}
}

// The exposure strategy enforces no representation targets; the table
// must render its target column as "—" instead of presenting derived
// proportions as enforced.
func TestMitigationTableExposureHidesTargets(t *testing.T) {
	m, err := marketplace.PresetByName("crowdsourcing", 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := m.Score("translation")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Attributes: []string{"gender"}, MaxDepth: 1}
	o, err := mitigate.Evaluate(m.Workers, scores, cfg, mitigate.Options{Strategy: "exposure"})
	if err != nil {
		t.Fatal(err)
	}
	text, err := MitigationTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, ", targets") {
		t.Errorf("exposure header claims targets:\n%s", text)
	}
	if !strings.Contains(text, "—") {
		t.Errorf("exposure table should render '—' in the target column:\n%s", text)
	}
}
