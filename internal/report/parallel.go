package report

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/marketplace"
)

// AuditParallel runs AuditMarketplace with the per-job quantifications
// spread over a bounded pool of goroutines. Audits across a
// marketplace's jobs are independent (each scores and partitions the
// same immutable worker dataset), so a real deployment auditing a
// platform with hundreds of jobs wants them concurrent; this is the
// scaling path for the AUDITOR scenario. Results come back in job
// order regardless of completion order.
//
// workers <= 0 selects GOMAXPROCS.
func AuditParallel(m *marketplace.Marketplace, cfg core.Config, workers int) ([]JobAudit, error) {
	if m == nil || len(m.Jobs) == 0 {
		return nil, fmt.Errorf("report: marketplace has no jobs to audit")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(m.Jobs) {
		workers = len(m.Jobs)
	}

	type indexed struct {
		idx   int
		audit JobAudit
		err   error
	}
	jobs := make(chan int)
	results := make(chan indexed, len(m.Jobs))
	for w := 0; w < workers; w++ {
		go func() {
			for idx := range jobs {
				job := m.Jobs[idx]
				audit, err := auditOneJob(m, job, cfg)
				results <- indexed{idx: idx, audit: audit, err: err}
			}
		}()
	}
	go func() {
		for i := range m.Jobs {
			jobs <- i
		}
		close(jobs)
	}()

	out := make([]JobAudit, len(m.Jobs))
	var firstErr error
	for range m.Jobs {
		r := <-results
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		out[r.idx] = r.audit
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// auditOneJob quantifies a single job — the unit of work shared by the
// serial and parallel audits.
func auditOneJob(m *marketplace.Marketplace, job marketplace.Job, cfg core.Config) (JobAudit, error) {
	scores, err := job.Function.Score(m.Workers)
	if err != nil {
		return JobAudit{}, fmt.Errorf("report: scoring job %q: %w", job.Name, err)
	}
	res, err := core.Quantify(m.Workers, scores, cfg)
	if err != nil {
		return JobAudit{}, fmt.Errorf("report: quantifying job %q: %w", job.Name, err)
	}
	most, least := FavoredGroups(res, scores)
	return JobAudit{
		Job:          job.Name,
		Function:     job.Function.String(),
		Unfairness:   res.Unfairness,
		Partitions:   len(res.Groups),
		MostFavored:  most,
		LeastFavored: least,
		Elapsed:      res.Stats.Elapsed,
		Result:       res,
		Scores:       scores,
	}, nil
}

// RankJobsByUnfairness returns the audited jobs sorted most-unfair
// first — the ordering an auditor's report leads with.
func RankJobsByUnfairness(audits []JobAudit) []JobAudit {
	out := append([]JobAudit(nil), audits...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Unfairness > out[j].Unfairness })
	return out
}
