package report

import (
	"testing"

	"repro/internal/core"
	"repro/internal/marketplace"
)

func TestAuditParallelMatchesSerial(t *testing.T) {
	m, err := marketplace.PresetCrowdsourcing(400, 23)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Attributes: []string{
		marketplace.AttrGender, marketplace.AttrEthnicity, marketplace.AttrLanguage,
	}}
	serial, err := AuditMarketplace(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AuditParallel(m, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("lengths: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		if parallel[i].Job != serial[i].Job {
			t.Errorf("job order differs at %d: %q vs %q", i, parallel[i].Job, serial[i].Job)
		}
		if parallel[i].Unfairness != serial[i].Unfairness {
			t.Errorf("job %q: unfairness %g vs %g", serial[i].Job, parallel[i].Unfairness, serial[i].Unfairness)
		}
		if parallel[i].MostFavored != serial[i].MostFavored {
			t.Errorf("job %q: most favored differs", serial[i].Job)
		}
	}
}

func TestAuditParallelDefaultsWorkers(t *testing.T) {
	m, err := marketplace.PresetFiverrLike(200, 5)
	if err != nil {
		t.Fatal(err)
	}
	audits, err := AuditParallel(m, core.Config{}, 0) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != len(m.Jobs) {
		t.Errorf("audits: %d", len(audits))
	}
	// More workers than jobs is fine too.
	audits, err = AuditParallel(m, core.Config{}, 64)
	if err != nil || len(audits) != len(m.Jobs) {
		t.Errorf("oversubscribed: %d, %v", len(audits), err)
	}
}

func TestAuditParallelErrors(t *testing.T) {
	if _, err := AuditParallel(nil, core.Config{}, 2); err == nil {
		t.Error("nil marketplace should error")
	}
	m, err := marketplace.PresetFiverrLike(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Invalid config propagates from workers.
	if _, err := AuditParallel(m, core.Config{Attributes: []string{"nope"}}, 2); err == nil {
		t.Error("bad config should error")
	}
}

func TestRankJobsByUnfairness(t *testing.T) {
	audits := []JobAudit{
		{Job: "a", Unfairness: 0.1},
		{Job: "b", Unfairness: 0.3},
		{Job: "c", Unfairness: 0.2},
	}
	ranked := RankJobsByUnfairness(audits)
	if ranked[0].Job != "b" || ranked[1].Job != "c" || ranked[2].Job != "a" {
		t.Errorf("ranking: %v", ranked)
	}
	// Input untouched.
	if audits[0].Job != "a" {
		t.Error("input mutated")
	}
}
