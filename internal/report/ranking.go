package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fairness"
)

// RankingTable renders ranking-native fairness statistics for a solved
// partitioning: each group's share of the global top-k, its selection
// rate, and its exposure, plus the top-k parity gap and worst exposure
// ratio — the demographic-parity [2,11] and exposure [9] views of the
// same partitioning FaiRank's EMD measure discovered.
func RankingTable(res *core.Result, scores []float64, k int) (string, error) {
	if res == nil || len(res.Groups) == 0 {
		return "", fmt.Errorf("report: empty result")
	}
	parts := make([][]int, len(res.Groups))
	for i, g := range res.Groups {
		parts[i] = g.Rows
	}
	gs, err := fairness.RankStats(scores, parts, k)
	if err != nil {
		return "", err
	}
	gap, err := fairness.TopKParityGap(scores, parts, k)
	if err != nil {
		return "", err
	}
	ratio, err := fairness.ExposureRatio(scores, parts)
	if err != nil {
		return "", err
	}
	rows := make([][]string, len(gs))
	for i, s := range gs {
		rows[i] = []string{
			res.Groups[i].Label(),
			fmt.Sprintf("%d", s.Size),
			fmt.Sprintf("%.3f", s.PopulationShare),
			fmt.Sprintf("%d", s.TopKCount),
			fmt.Sprintf("%.3f", s.SelectionRate),
			fmt.Sprintf("%.3f", s.Exposure),
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ranking-native view (top-%d):\n", k)
	b.WriteString(TextTable(
		[]string{"partition", "n", "pop share", "in top-k", "selection rate", "exposure"},
		rows,
	))
	fmt.Fprintf(&b, "top-%d parity gap: %.4f (0 = demographic parity)\n", k, gap)
	fmt.Fprintf(&b, "worst exposure ratio: %.4f (1 = equal exposure)\n", ratio)
	return b.String(), nil
}
