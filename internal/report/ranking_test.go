package report

import (
	"strings"
	"testing"
)

func TestRankingTable(t *testing.T) {
	res, scores := table1Result(t)
	out, err := RankingTable(res, scores, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ranking-native view (top-3):",
		"selection rate",
		"parity gap",
		"exposure ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ranking table missing %q:\n%s", want, out)
		}
	}
	// One row per group.
	for _, g := range res.Groups {
		if !strings.Contains(out, g.Label()) {
			t.Errorf("missing group %q", g.Label())
		}
	}
}

func TestRankingTableErrors(t *testing.T) {
	if _, err := RankingTable(nil, nil, 1); err == nil {
		t.Error("nil result should error")
	}
	res, scores := table1Result(t)
	if _, err := RankingTable(res, scores, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := RankingTable(res, scores, 99); err == nil {
		t.Error("k>n should error")
	}
}
