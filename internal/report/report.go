// Package report renders FaiRank results for terminals and files: the
// partitioning trees, per-partition statistic boxes and score
// histograms of the paper's Figure 3 interface, plus the multi-job
// auditor report of the AUDITOR demonstration scenario (§4).
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/partition"
	"repro/internal/stats"
)

// barGlyph is the unit of the ASCII histogram bars.
const barGlyph = "█"

// RenderHistogram draws a histogram as one line per bin:
//
//	[0.00,0.20)  ██████ 0.30
//
// width is the bar length of a full bin (mass 1 after normalization).
func RenderHistogram(h histogram.Hist, width int) string {
	if width < 1 {
		width = 20
	}
	max := 0.0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = int(c / max * float64(width))
		}
		fmt.Fprintf(&b, "  %s %s %.2f\n", h.BinLabel(i), strings.Repeat(barGlyph, bar), c)
	}
	return b.String()
}

// GroupStats summarizes one partition for display: the content of the
// paper's "Node box".
type GroupStats struct {
	Label string
	Size  int
	Score stats.Summary
}

// StatsFor computes GroupStats of a group under the given scores.
func StatsFor(g partition.Group, scores []float64) GroupStats {
	vals := make([]float64, 0, len(g.Rows))
	for _, r := range g.Rows {
		if r >= 0 && r < len(scores) {
			vals = append(vals, scores[r])
		}
	}
	return GroupStats{Label: g.Label(), Size: g.Size(), Score: stats.Summarize(vals)}
}

// NodeBox renders one partition's statistics and histogram — what the
// FaiRank UI shows when the user clicks a node of the tree.
func NodeBox(g partition.Group, h histogram.Hist, scores []float64) string {
	gs := StatsFor(g, scores)
	var b strings.Builder
	fmt.Fprintf(&b, "┌ %s\n", gs.Label)
	fmt.Fprintf(&b, "│ individuals: %d\n", gs.Size)
	fmt.Fprintf(&b, "│ scores: %s\n", gs.Score)
	b.WriteString("│ distribution:\n")
	for _, line := range strings.Split(strings.TrimRight(RenderHistogram(h, 24), "\n"), "\n") {
		fmt.Fprintf(&b, "│%s\n", line)
	}
	b.WriteString("└\n")
	return b.String()
}

// ResultOptions controls RenderResult.
type ResultOptions struct {
	// Histograms includes a mini histogram under each leaf.
	Histograms bool
	// Pairwise includes the pairwise-distance table.
	Pairwise bool
	// BarWidth is the histogram bar width (default 18).
	BarWidth int
}

// RenderResult renders a quantification result as a panel: the
// "General box" (criterion, unfairness, work counters), the
// partitioning tree with per-leaf statistics, and optionally the
// pairwise distance table — the textual equivalent of one Figure 3
// panel.
func RenderResult(res *core.Result, scores []float64, opts ResultOptions) string {
	if opts.BarWidth == 0 {
		opts.BarWidth = 18
	}
	var b strings.Builder
	fmt.Fprintf(&b, "criterion : %s %s\n", res.Objective, res.Measure.Name())
	fmt.Fprintf(&b, "unfairness: %.4f\n", res.Unfairness)
	fmt.Fprintf(&b, "partitions: %d\n", len(res.Groups))
	fmt.Fprintf(&b, "work      : %d distance evals, %d splits scored", res.Stats.DistanceEvals, res.Stats.SplitsEvaluated)
	if res.Stats.Partitionings > 0 {
		fmt.Fprintf(&b, ", %d partitionings enumerated", res.Stats.Partitionings)
	}
	fmt.Fprintf(&b, ", %s\n", res.Stats.Elapsed.Round(10e3))

	if res.Tree != nil {
		b.WriteString("\n")
		renderNode(&b, res, scores, res.Tree.Root, 0, opts, leafHistIndex(res))
	} else {
		b.WriteString("\npartitions (no tree; exhaustive search):\n")
		for i, g := range res.Groups {
			gs := StatsFor(g, scores)
			fmt.Fprintf(&b, "  %s (n=%d, mean=%.3f)\n", gs.Label, gs.Size, gs.Score.Mean)
			if opts.Histograms {
				b.WriteString(indent(RenderHistogram(res.Hists[i], opts.BarWidth), "  "))
			}
		}
	}

	if opts.Pairwise && len(res.Pairwise) > 0 {
		b.WriteString("\npairwise distances:\n")
		for _, p := range res.Pairwise {
			fmt.Fprintf(&b, "  %-46s vs %-46s %.4f\n", res.Groups[p.I].Label(), res.Groups[p.J].Label(), p.Distance)
		}
	}
	return b.String()
}

// leafHistIndex maps leaf group keys to their histogram index.
func leafHistIndex(res *core.Result) map[partition.Key]int {
	idx := make(map[partition.Key]int, len(res.Groups))
	for i, g := range res.Groups {
		idx[g.Key()] = i
	}
	return idx
}

func renderNode(b *strings.Builder, res *core.Result, scores []float64, n *partition.Node, depth int, opts ResultOptions, histIdx map[partition.Key]int) {
	pad := strings.Repeat("  ", depth)
	gs := StatsFor(n.Group, scores)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%s▣ %s  (n=%d, mean=%.3f)\n", pad, gs.Label, gs.Size, gs.Score.Mean)
		if opts.Histograms {
			if i, ok := histIdx[n.Group.Key()]; ok {
				b.WriteString(indent(RenderHistogram(res.Hists[i], opts.BarWidth), pad))
			}
		}
		return
	}
	fmt.Fprintf(b, "%s▽ %s  (n=%d) — split on %s\n", pad, gs.Label, gs.Size, n.SplitAttr)
	for _, c := range n.Children {
		renderNode(b, res, scores, c, depth+1, opts, histIdx)
	}
}

func indent(s, pad string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(pad)
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

// MarkdownTable renders a GitHub-style table.
func MarkdownTable(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(headers, " | ") + " |\n")
	seps := make([]string, len(headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// TextTable renders a fixed-width table with a header rule.
func TextTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-len([]rune(c)))
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var b strings.Builder
	b.WriteString(line(headers) + "\n")
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	b.WriteString(line(rule) + "\n")
	for _, row := range rows {
		b.WriteString(line(row) + "\n")
	}
	return b.String()
}

// FavoredGroups returns the labels of the most and least favored
// partitions of a result (highest and lowest mean score) — the
// auditor's headline finding per job.
func FavoredGroups(res *core.Result, scores []float64) (most, least string) {
	bestMean, worstMean := -1.0, 2.0
	for _, g := range res.Groups {
		gs := StatsFor(g, scores)
		if gs.Score.Mean > bestMean {
			bestMean, most = gs.Score.Mean, gs.Label
		}
		if gs.Score.Mean < worstMean {
			worstMean, least = gs.Score.Mean, gs.Label
		}
	}
	return most, least
}

// SortPairsByDistance returns the result's pairwise breakdowns sorted
// by decreasing distance — the "who is treated most differently"
// ordering.
func SortPairsByDistance(res *core.Result) []string {
	out := make([]string, 0, len(res.Pairwise))
	type row struct {
		label string
		d     float64
	}
	rows := make([]row, 0, len(res.Pairwise))
	for _, p := range res.Pairwise {
		rows = append(rows, row{
			label: fmt.Sprintf("%s ↔ %s: %.4f", res.Groups[p.I].Label(), res.Groups[p.J].Label(), p.Distance),
			d:     p.Distance,
		})
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].d > rows[b].d })
	for _, r := range rows {
		out = append(out, r.label)
	}
	return out
}
