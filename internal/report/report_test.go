package report

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/histogram"
	"repro/internal/marketplace"
	"repro/internal/partition"
	"repro/internal/scoring"
)

func table1Result(t *testing.T) (*core.Result, []float64) {
	t.Helper()
	d := dataset.Table1()
	fn, err := scoring.NewLinear(dataset.Table1Weights())
	if err != nil {
		t.Fatal(err)
	}
	scores, err := fn.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Quantify(d, scores, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res, scores
}

func TestRenderHistogram(t *testing.T) {
	h := histogram.Hist{Lo: 0, Hi: 1, Counts: []float64{0.5, 0, 1}}
	out := RenderHistogram(h, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("histogram lines: %d", len(lines))
	}
	if !strings.Contains(lines[0], "0.50") {
		t.Errorf("missing mass label: %q", lines[0])
	}
	// The tallest bin gets the longest bar.
	if strings.Count(lines[2], barGlyph) != 10 {
		t.Errorf("full bin bar length: %q", lines[2])
	}
	if strings.Count(lines[0], barGlyph) != 5 {
		t.Errorf("half bin bar length: %q", lines[0])
	}
	if strings.Count(lines[1], barGlyph) != 0 {
		t.Errorf("empty bin bar: %q", lines[1])
	}
}

func TestRenderHistogramDefaultsWidth(t *testing.T) {
	h := histogram.Hist{Lo: 0, Hi: 1, Counts: []float64{1}}
	if out := RenderHistogram(h, 0); !strings.Contains(out, barGlyph) {
		t.Error("zero width should default")
	}
}

func TestStatsFor(t *testing.T) {
	g := partition.Group{Rows: []int{0, 1}}
	gs := StatsFor(g, []float64{0.2, 0.4})
	if gs.Size != 2 || math.Abs(gs.Score.Mean-0.3) > 1e-12 {
		t.Errorf("StatsFor = %+v", gs)
	}
	// Out-of-range rows are skipped rather than panicking.
	gs = StatsFor(partition.Group{Rows: []int{99}}, []float64{0.5})
	if gs.Score.N != 0 {
		t.Errorf("out-of-range rows counted: %+v", gs)
	}
}

func TestNodeBox(t *testing.T) {
	res, scores := table1Result(t)
	out := NodeBox(res.Groups[0], res.Hists[0], scores)
	if !strings.Contains(out, "individuals:") || !strings.Contains(out, "distribution:") {
		t.Errorf("node box missing sections: %q", out)
	}
	if !strings.Contains(out, res.Groups[0].Label()) {
		t.Error("node box missing group label")
	}
}

func TestRenderResultTree(t *testing.T) {
	res, scores := table1Result(t)
	out := RenderResult(res, scores, ResultOptions{Histograms: true, Pairwise: true})
	for _, want := range []string{
		"criterion : most-unfair avg-emd(bins=5)",
		"unfairness: 0.3467",
		"split on ethnicity",
		"pairwise distances:",
		barGlyph,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderResultFlat(t *testing.T) {
	d := dataset.Table1()
	fn, _ := scoring.NewLinear(dataset.Table1Weights())
	scores, _ := fn.Score(d)
	res, err := core.Exhaustive(d, scores, core.Config{Attributes: []string{dataset.AttrGender, dataset.AttrLanguage}})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderResult(res, scores, ResultOptions{Histograms: true})
	if !strings.Contains(out, "exhaustive search") {
		t.Errorf("flat render missing marker:\n%s", out)
	}
	if !strings.Contains(out, "partitionings enumerated") {
		t.Error("flat render missing enumeration count")
	}
}

func TestMarkdownTable(t *testing.T) {
	out := MarkdownTable([]string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "| a | b |\n| --- | --- |\n| 1 | 2 |\n| 3 | 4 |\n"
	if out != want {
		t.Errorf("markdown table = %q", out)
	}
}

func TestTextTableAlignment(t *testing.T) {
	out := TextTable([]string{"name", "v"}, [][]string{{"long-name", "1"}, {"x", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All rows align on the second column.
	col := strings.Index(lines[0], "v")
	if !strings.HasPrefix(lines[2][col:], "1") || !strings.HasPrefix(lines[3][col:], "22") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFavoredGroups(t *testing.T) {
	res, scores := table1Result(t)
	most, least := FavoredGroups(res, scores)
	if most == "" || least == "" || most == least {
		t.Errorf("favored groups: %q vs %q", most, least)
	}
}

func TestSortPairsByDistance(t *testing.T) {
	res, _ := table1Result(t)
	pairs := SortPairsByDistance(res)
	if len(pairs) != len(res.Pairwise) {
		t.Fatalf("pair count: %d vs %d", len(pairs), len(res.Pairwise))
	}
	// Verify the rendered list is sorted by parsing the trailing
	// number would be brittle; instead check first >= last via the
	// underlying breakdown.
	maxD, minD := -1.0, 2.0
	for _, p := range res.Pairwise {
		if p.Distance > maxD {
			maxD = p.Distance
		}
		if p.Distance < minD {
			minD = p.Distance
		}
	}
	if !strings.Contains(pairs[0], fmt.Sprintf("%.4f", maxD)) {
		t.Errorf("first pair %q should carry max distance %.4f", pairs[0], maxD)
	}
	if !strings.Contains(pairs[len(pairs)-1], fmt.Sprintf("%.4f", minD)) {
		t.Errorf("last pair %q should carry min distance %.4f", pairs[len(pairs)-1], minD)
	}
}

func TestAuditMarketplace(t *testing.T) {
	m, err := marketplace.PresetCrowdsourcing(400, 23)
	if err != nil {
		t.Fatal(err)
	}
	audits, err := AuditMarketplace(m, core.Config{
		Measure:    fairness.DefaultMeasure(),
		Attributes: []string{marketplace.AttrGender, marketplace.AttrEthnicity, marketplace.AttrLanguage},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(audits) != len(m.Jobs) {
		t.Fatalf("audits: %d for %d jobs", len(audits), len(m.Jobs))
	}
	for _, a := range audits {
		if a.Unfairness < 0 || a.Result == nil || a.MostFavored == "" {
			t.Errorf("incomplete audit: %+v", a)
		}
	}
	out := RenderAudit(m.Name, audits)
	if !strings.Contains(out, "FAIRNESS REPORT") || !strings.Contains(out, "most problematic job") {
		t.Errorf("audit render:\n%s", out)
	}
	for _, j := range m.Jobs {
		if !strings.Contains(out, j.Name) {
			t.Errorf("audit missing job %q", j.Name)
		}
	}
}

func TestAuditRankOnly(t *testing.T) {
	m, err := marketplace.PresetTaskRabbitLike(300, 29)
	if err != nil {
		t.Fatal(err)
	}
	audits, err := AuditRankOnly(m, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range audits {
		if a.Function != "[hidden — ranking only]" {
			t.Errorf("rank-only audit function label: %q", a.Function)
		}
	}
}

func TestAuditEmptyMarketplace(t *testing.T) {
	if _, err := AuditMarketplace(nil, core.Config{}); err == nil {
		t.Error("nil marketplace should error")
	}
	if _, err := AuditRankOnly(&marketplace.Marketplace{}, core.Config{}); err == nil {
		t.Error("job-less marketplace should error")
	}
}
