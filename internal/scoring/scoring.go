// Package scoring implements FaiRank's scoring functions: linear
// combinations of observed attributes that map each individual to a
// score in [0,1] (Definition 1 of the paper, f(w) = Σ αᵢ·bᵢ), plus the
// rank-only mode used when the scoring function is not transparent
// ("FaiRank builds histograms using ranks of individuals rather than
// actual function scores", paper §1).
package scoring

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Term is one weighted observed attribute of a linear scoring
// function.
type Term struct {
	Attr   string
	Weight float64
}

// Linear is a linear scoring function f(w) = Σ αᵢ·bᵢ over observed
// numeric attributes. With non-negative weights summing to 1 and
// attributes in [0,1], scores land in [0,1] as Definition 1 requires.
type Linear struct {
	terms []Term
}

// NewLinear builds a linear scoring function from attribute weights.
// A weight of zero "indicates that the corresponding attribute is not
// relevant" (paper Definition 1) and is dropped. Negative, NaN and
// infinite weights are rejected; at least one positive weight is
// required. Terms are kept sorted by attribute name so String and
// equality are deterministic.
func NewLinear(weights map[string]float64) (*Linear, error) {
	var terms []Term
	for attr, w := range weights {
		if attr == "" {
			return nil, fmt.Errorf("scoring: empty attribute name")
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("scoring: invalid weight %g for %q", w, attr)
		}
		if w == 0 {
			continue
		}
		terms = append(terms, Term{Attr: attr, Weight: w})
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("scoring: no positive weights")
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i].Attr < terms[j].Attr })
	return &Linear{terms: terms}, nil
}

// Terms returns a copy of the function's terms.
func (l *Linear) Terms() []Term { return append([]Term(nil), l.terms...) }

// TotalWeight returns the sum of weights.
func (l *Linear) TotalWeight() float64 {
	s := 0.0
	for _, t := range l.terms {
		s += t.Weight
	}
	return s
}

// Normalized returns a copy whose weights sum to 1, preserving their
// proportions. This guarantees scores stay in [0,1] whenever the
// attributes do.
func (l *Linear) Normalized() *Linear {
	total := l.TotalWeight()
	terms := make([]Term, len(l.terms))
	for i, t := range l.terms {
		terms[i] = Term{Attr: t.Attr, Weight: t.Weight / total}
	}
	return &Linear{terms: terms}
}

// String renders the function as "0.3*language_test + 0.7*rating".
func (l *Linear) String() string {
	parts := make([]string, len(l.terms))
	for i, t := range l.terms {
		parts[i] = fmt.Sprintf("%g*%s", t.Weight, t.Attr)
	}
	return strings.Join(parts, " + ")
}

// Score computes f(w) for every individual of d. Each term's attribute
// must exist, be numeric, and have no missing values; out-of-[0,1]
// results are reported as an error when the function's weights sum to
// at most 1, since that indicates attributes outside [0,1] (normalize
// them first with MinMaxNormalize).
func (l *Linear) Score(d *dataset.Dataset) ([]float64, error) {
	cols := make([][]float64, len(l.terms))
	for i, t := range l.terms {
		vals, err := d.Num(t.Attr)
		if err != nil {
			return nil, fmt.Errorf("scoring: %w", err)
		}
		cols[i] = vals
	}
	checkRange := l.TotalWeight() <= 1+1e-9
	out := make([]float64, d.Len())
	for r := 0; r < d.Len(); r++ {
		s := 0.0
		for i, t := range l.terms {
			v := cols[i][r]
			if math.IsNaN(v) {
				return nil, fmt.Errorf("scoring: individual %q has missing %q; impute or drop first", d.ID(r), t.Attr)
			}
			s += t.Weight * v
		}
		if checkRange && (s < -1e-9 || s > 1+1e-9) {
			return nil, fmt.Errorf("scoring: score %g for %q outside [0,1]; normalize attributes first", s, d.ID(r))
		}
		out[r] = s
	}
	return out, nil
}

// Parse parses a scoring expression of the form
// "0.3*language_test + 0.7*rating". Whitespace is flexible; each term
// is weight '*' attribute; a bare attribute means weight 1.
func Parse(expr string) (*Linear, error) {
	weights := make(map[string]float64)
	for _, raw := range strings.Split(expr, "+") {
		term := strings.TrimSpace(raw)
		if term == "" {
			return nil, fmt.Errorf("scoring: empty term in %q", expr)
		}
		var attr string
		w := 1.0
		if i := strings.Index(term, "*"); i >= 0 {
			ws := strings.TrimSpace(term[:i])
			attr = strings.TrimSpace(term[i+1:])
			parsed, err := strconv.ParseFloat(ws, 64)
			if err != nil {
				return nil, fmt.Errorf("scoring: bad weight %q in %q", ws, expr)
			}
			w = parsed
		} else {
			attr = term
		}
		if attr == "" || strings.ContainsAny(attr, " \t*") {
			return nil, fmt.Errorf("scoring: bad attribute %q in %q", attr, expr)
		}
		if _, dup := weights[attr]; dup {
			return nil, fmt.Errorf("scoring: attribute %q appears twice in %q", attr, expr)
		}
		weights[attr] = w
	}
	return NewLinear(weights)
}

// MinMaxNormalize returns a dataset in which each named numeric
// attribute is rescaled to [0,1] via (v-min)/(max-min). Constant
// columns map to 0.5. Missing values stay missing. If no attributes
// are given, every observed numeric attribute is normalized.
func MinMaxNormalize(d *dataset.Dataset, attrs ...string) (*dataset.Dataset, error) {
	if len(attrs) == 0 {
		for _, name := range d.Schema().Observed() {
			a, err := d.Schema().Attr(name)
			if err != nil {
				return nil, err
			}
			if a.Kind == dataset.Numeric {
				attrs = append(attrs, name)
			}
		}
	}
	// Rebuild row by row through a builder: columns are immutable.
	norm := make(map[string][]float64, len(attrs))
	for _, attr := range attrs {
		vals, err := d.Num(attr)
		if err != nil {
			return nil, fmt.Errorf("scoring: normalize: %w", err)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if math.IsInf(lo, 1) {
			return nil, fmt.Errorf("scoring: normalize %q: all values missing", attr)
		}
		out := make([]float64, len(vals))
		for i, v := range vals {
			switch {
			case math.IsNaN(v):
				out[i] = math.NaN()
			case hi == lo:
				out[i] = 0.5
			default:
				out[i] = (v - lo) / (hi - lo)
			}
		}
		norm[attr] = out
	}
	b := dataset.NewBuilder(d.Schema())
	for r := 0; r < d.Len(); r++ {
		cats := make(map[string]string)
		nums := make(map[string]float64)
		for i := 0; i < d.Schema().Len(); i++ {
			a := d.Schema().At(i)
			if a.Kind == dataset.Categorical {
				v, err := d.Value(a.Name, r)
				if err != nil {
					return nil, err
				}
				cats[a.Name] = v
				continue
			}
			if nv, ok := norm[a.Name]; ok {
				if !math.IsNaN(nv[r]) {
					nums[a.Name] = nv[r]
				}
				continue
			}
			vals, err := d.Num(a.Name)
			if err != nil {
				return nil, err
			}
			if !math.IsNaN(vals[r]) {
				nums[a.Name] = vals[r]
			}
		}
		b.AppendNumeric(d.ID(r), cats, nums)
	}
	return b.Build()
}

// PseudoScoresFromRanks converts 1-based ranks (best = 1; ties allowed
// as average ranks) into pseudo-scores in [0,1]: rank r of n maps to
// (n-r)/(n-1), so the best individual gets 1 and the worst 0. This is
// the rank-only transparency mode of the paper. A single individual
// gets score 1.
func PseudoScoresFromRanks(ranks []float64) ([]float64, error) {
	n := len(ranks)
	if n == 0 {
		return nil, fmt.Errorf("scoring: empty ranking")
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = 1
		return out, nil
	}
	for i, r := range ranks {
		if math.IsNaN(r) || r < 1 || r > float64(n) {
			return nil, fmt.Errorf("scoring: rank %g at %d outside [1,%d]", r, i, n)
		}
		out[i] = (float64(n) - r) / (float64(n) - 1)
	}
	return out, nil
}

// PseudoScores converts raw scores into rank-based pseudo-scores: the
// composition of average ranking (ties share ranks) and
// PseudoScoresFromRanks. This is what an auditor can compute when a
// marketplace exposes only the order of candidates.
func PseudoScores(scores []float64) ([]float64, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("scoring: empty scores")
	}
	return PseudoScoresFromRanks(stats.AverageRanks(scores))
}

// RankingFromOrder converts an ordered list of row indices (best
// first) into 1-based ranks per row. Every row must appear exactly
// once.
func RankingFromOrder(order []int, n int) ([]float64, error) {
	if len(order) != n {
		return nil, fmt.Errorf("scoring: order has %d entries, dataset has %d", len(order), n)
	}
	ranks := make([]float64, n)
	seen := make([]bool, n)
	for pos, row := range order {
		if row < 0 || row >= n {
			return nil, fmt.Errorf("scoring: order entry %d out of range [0,%d)", row, n)
		}
		if seen[row] {
			return nil, fmt.Errorf("scoring: row %d appears twice in order", row)
		}
		seen[row] = true
		ranks[row] = float64(pos + 1)
	}
	return ranks, nil
}
