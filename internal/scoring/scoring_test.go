package scoring

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/stats"
)

func TestNewLinearValidation(t *testing.T) {
	if _, err := NewLinear(nil); err == nil {
		t.Error("no weights should error")
	}
	if _, err := NewLinear(map[string]float64{"a": 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := NewLinear(map[string]float64{"a": -1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewLinear(map[string]float64{"a": math.NaN()}); err == nil {
		t.Error("NaN weight should error")
	}
	if _, err := NewLinear(map[string]float64{"": 1}); err == nil {
		t.Error("empty attr should error")
	}
	l, err := NewLinear(map[string]float64{"a": 0.5, "b": 0, "c": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Terms()) != 2 {
		t.Errorf("zero-weight term kept: %v", l.Terms())
	}
}

func TestLinearStringDeterministic(t *testing.T) {
	l, _ := NewLinear(map[string]float64{"rating": 0.7, "language_test": 0.3})
	if got := l.String(); got != "0.3*language_test + 0.7*rating" {
		t.Errorf("String = %q", got)
	}
}

func TestNormalized(t *testing.T) {
	l, _ := NewLinear(map[string]float64{"a": 2, "b": 6})
	n := l.Normalized()
	terms := n.Terms()
	if terms[0].Weight != 0.25 || terms[1].Weight != 0.75 {
		t.Errorf("Normalized terms = %v", terms)
	}
	if math.Abs(n.TotalWeight()-1) > 1e-12 {
		t.Errorf("TotalWeight = %g", n.TotalWeight())
	}
	// Original untouched.
	if l.TotalWeight() != 8 {
		t.Error("Normalized mutated receiver")
	}
}

func TestScoreTable1Exact(t *testing.T) {
	d := dataset.Table1()
	l, err := NewLinear(dataset.Table1Weights())
	if err != nil {
		t.Fatal(err)
	}
	scores, err := l.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Table1Scores()
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-9 {
			t.Errorf("f(%s) = %.6f, want %.6f", d.ID(i), scores[i], want[i])
		}
	}
}

func TestScoreErrors(t *testing.T) {
	d := dataset.Table1()
	l, _ := NewLinear(map[string]float64{"nope": 1})
	if _, err := l.Score(d); err == nil {
		t.Error("unknown attribute should error")
	}
	l, _ = NewLinear(map[string]float64{dataset.AttrGender: 1})
	if _, err := l.Score(d); err == nil {
		t.Error("categorical attribute should error")
	}
	// Out-of-range attribute with weights summing to 1.
	l, _ = NewLinear(map[string]float64{dataset.AttrExperience: 1})
	if _, err := l.Score(d); err == nil {
		t.Error("unnormalized attribute should error when weights sum to 1")
	}
}

func TestScoreMissingValue(t *testing.T) {
	s, _ := dataset.NewSchema(
		dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Observed},
	)
	d, err := dataset.NewBuilder(s).Append("a", []string{""}).Build()
	if err != nil {
		t.Fatal(err)
	}
	l, _ := NewLinear(map[string]float64{"x": 1})
	if _, err := l.Score(d); err == nil {
		t.Error("missing value should error")
	}
}

func TestParse(t *testing.T) {
	l, err := Parse("0.3*language_test + 0.7*rating")
	if err != nil {
		t.Fatal(err)
	}
	if got := l.String(); got != "0.3*language_test + 0.7*rating" {
		t.Errorf("parsed String = %q", got)
	}
	// Bare attribute = weight 1.
	l, err = Parse("rating")
	if err != nil {
		t.Fatal(err)
	}
	if terms := l.Terms(); len(terms) != 1 || terms[0].Weight != 1 {
		t.Errorf("bare attr terms = %v", terms)
	}
}

func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		"", " + ", "0.3*", "*rating", "x*rating", "0.3x*rating",
		"0.5*a + 0.5*a", "-0.3*rating", "0.3*a b",
	} {
		if _, err := Parse(expr); err == nil {
			t.Errorf("Parse(%q) should error", expr)
		}
	}
}

func TestParseScoreRoundTrip(t *testing.T) {
	d := dataset.Table1()
	l, err := Parse("0.3*language_test + 0.7*rating")
	if err != nil {
		t.Fatal(err)
	}
	scores, err := l.Score(d)
	if err != nil {
		t.Fatal(err)
	}
	want := dataset.Table1Scores()
	for i := range want {
		if math.Abs(scores[i]-want[i]) > 1e-9 {
			t.Fatalf("parsed function diverges at %d: %g vs %g", i, scores[i], want[i])
		}
	}
}

func TestMinMaxNormalize(t *testing.T) {
	d := dataset.Table1()
	n, err := MinMaxNormalize(d, dataset.AttrExperience)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := n.Num(dataset.AttrExperience)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v < 0 || v > 1 {
			t.Errorf("normalized value %d = %g", i, v)
		}
	}
	// w5 has max experience (21) -> 1; w1 and w8 have 0 -> 0.
	if vals[4] != 1 || vals[0] != 0 {
		t.Errorf("normalization endpoints: %v", vals)
	}
	// Original untouched.
	orig, _ := d.Num(dataset.AttrExperience)
	if orig[4] != 21 {
		t.Error("MinMaxNormalize mutated input")
	}
}

func TestMinMaxNormalizeDefaultsToObserved(t *testing.T) {
	d := dataset.Table1()
	n, err := MinMaxNormalize(d)
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := n.Num(dataset.AttrExperience)
	if vals[4] != 1 {
		t.Error("observed attr not normalized by default")
	}
	// Protected numeric (year_of_birth) untouched by default.
	yob, _ := n.Num(dataset.AttrYearOfBirth)
	if yob[0] != 2004 {
		t.Error("protected attr normalized unexpectedly")
	}
}

func TestMinMaxNormalizeConstantColumn(t *testing.T) {
	s, _ := dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Observed})
	d, err := dataset.NewBuilder(s).
		Append("a", []string{"3"}).
		Append("b", []string{"3"}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := MinMaxNormalize(d, "x")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := n.Num("x")
	if vals[0] != 0.5 || vals[1] != 0.5 {
		t.Errorf("constant column should map to 0.5: %v", vals)
	}
}

func TestMinMaxNormalizeErrors(t *testing.T) {
	d := dataset.Table1()
	if _, err := MinMaxNormalize(d, "nope"); err == nil {
		t.Error("unknown attr should error")
	}
	s, _ := dataset.NewSchema(dataset.Attribute{Name: "x", Kind: dataset.Numeric, Role: dataset.Observed})
	allMissing, err := dataset.NewBuilder(s).Append("a", []string{""}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MinMaxNormalize(allMissing, "x"); err == nil {
		t.Error("all-missing attr should error")
	}
}

func TestPseudoScoresFromRanks(t *testing.T) {
	// 3 individuals, ranks 1..3 -> scores 1, 0.5, 0.
	out, err := PseudoScoresFromRanks([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.5, 0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("pseudo scores = %v, want %v", out, want)
		}
	}
}

func TestPseudoScoresFromRanksSingleton(t *testing.T) {
	out, err := PseudoScoresFromRanks([]float64{1})
	if err != nil || out[0] != 1 {
		t.Errorf("singleton pseudo score = %v, %v", out, err)
	}
}

func TestPseudoScoresFromRanksErrors(t *testing.T) {
	if _, err := PseudoScoresFromRanks(nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := PseudoScoresFromRanks([]float64{0.5, 2}); err == nil {
		t.Error("rank < 1 should error")
	}
	if _, err := PseudoScoresFromRanks([]float64{1, 5}); err == nil {
		t.Error("rank > n should error")
	}
}

func TestPseudoScoresPreservesOrder(t *testing.T) {
	scores := []float64{0.2, 0.9, 0.5, 0.7}
	pseudo, err := PseudoScores(scores)
	if err != nil {
		t.Fatal(err)
	}
	// Order must be preserved: argsort identical.
	for i := range scores {
		for j := range scores {
			if (scores[i] < scores[j]) != (pseudo[i] < pseudo[j]) {
				t.Fatalf("order not preserved at (%d,%d): %v -> %v", i, j, scores, pseudo)
			}
		}
	}
	// Best gets 1, worst gets 0.
	if pseudo[1] != 1 || pseudo[0] != 0 {
		t.Errorf("pseudo endpoints: %v", pseudo)
	}
}

func TestPseudoScoresTies(t *testing.T) {
	pseudo, err := PseudoScores([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pseudo[0] != pseudo[1] {
		t.Errorf("tied scores got different pseudo scores: %v", pseudo)
	}
}

func TestRankingFromOrder(t *testing.T) {
	ranks, err := RankingFromOrder([]int{2, 0, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 1}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks, want)
		}
	}
}

func TestRankingFromOrderErrors(t *testing.T) {
	if _, err := RankingFromOrder([]int{0}, 2); err == nil {
		t.Error("short order should error")
	}
	if _, err := RankingFromOrder([]int{0, 0}, 2); err == nil {
		t.Error("duplicate row should error")
	}
	if _, err := RankingFromOrder([]int{0, 5}, 2); err == nil {
		t.Error("out-of-range row should error")
	}
}

// Property: pseudo-scores always live in [0,1] and are monotone in the
// original scores.
func TestPseudoScoresQuick(t *testing.T) {
	g := stats.NewRNG(909)
	f := func(nn uint8) bool {
		n := int(nn%30) + 2
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = g.Float64()
		}
		pseudo, err := PseudoScores(scores)
		if err != nil {
			return false
		}
		for i := range pseudo {
			if pseudo[i] < 0 || pseudo[i] > 1 {
				return false
			}
			for j := range pseudo {
				if scores[i] < scores[j] && pseudo[i] >= pseudo[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
