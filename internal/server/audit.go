package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"html"
	"net/http"
	"strings"

	"repro/internal/audit"
	"repro/internal/auditstore"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/fairness"
	"repro/internal/marketplace"
	"repro/internal/mitigate"
	"repro/internal/obsv"
	"repro/internal/report"
	"repro/internal/scoring"
)

// auditRequest configures one marketplace-wide batch audit: which
// jobs to audit (a generated preset marketplace, or a registered
// dataset plus explicit job functions), the fairness formulation, and
// the mitigation knobs applied to every job.
type auditRequest struct {
	// Preset generates a marketplace to audit (with N workers and
	// Seed); mutually exclusive with Dataset+Jobs.
	Preset string
	N      int
	Seed   uint64
	// Dataset names a registered dataset; Jobs lists the scoring
	// functions to audit over it.
	Dataset string
	Jobs    []auditJobSpec
	// Strategy, K, TopN, Workers, Targets, Alpha and MinExposureRatio
	// configure the batch loop (see audit.Options).
	Strategy         string
	K                int
	TopN             int
	Workers          int
	Targets          map[string]float64
	Alpha            float64
	MinExposureRatio float64
	// MitigateSeed drives exposure-lp's per-job sampling (0 = 1);
	// distinct from Seed, which generates the preset population.
	MitigateSeed uint64
	// Aggregator, Distance, Bins, Attributes, MinGroupSize, MaxDepth
	// and SolverWorkers configure the quantification engine, as in a
	// panel request.
	Aggregator    string
	Distance      string
	Bins          int
	Attributes    []string
	MinGroupSize  int
	MaxDepth      int
	SolverWorkers int
}

// auditJobSpec names one scoring function to audit.
type auditJobSpec struct {
	Name     string
	Function string
}

// auditJobJSON is the JSON form of one job's audit row.
type auditJobJSON struct {
	Job              string      `json:"job"`
	Function         string      `json:"function"`
	Groups           []string    `json:"groups"`
	Attributes       []string    `json:"attributes"`
	Before           metricsJSON `json:"before"`
	After            metricsJSON `json:"after"`
	UnfairnessBefore float64     `json:"unfairness_before"`
	UnfairnessAfter  float64     `json:"unfairness_after"`
	NDCG             float64     `json:"ndcg"`
	MeanDisplacement float64     `json:"mean_displacement"`
	Improved         bool        `json:"improved"`
	Infeasible       bool        `json:"infeasible"`
	Detail           string      `json:"detail,omitempty"`
}

// auditResponse is the JSON answer of POST /api/audit.
type auditResponse struct {
	Marketplace          string         `json:"marketplace"`
	Strategy             string         `json:"strategy"`
	K                    int            `json:"k"`
	Jobs                 []auditJobJSON `json:"jobs"`
	Worst                []string       `json:"worst"`
	Hotspots             []hotspotJSON  `json:"hotspots"`
	Infeasible           int            `json:"infeasible"`
	MeanUnfairnessBefore float64        `json:"mean_unfairness_before"`
	MeanUnfairnessAfter  float64        `json:"mean_unfairness_after"`
	MeanParityGapBefore  float64        `json:"mean_parity_gap_before"`
	MeanParityGapAfter   float64        `json:"mean_parity_gap_after"`
	MeanNDCG             float64        `json:"mean_ndcg"`
	MeanDisplacement     float64        `json:"mean_displacement"`
	ElapsedMS            float64        `json:"elapsed_ms"`
	Text                 string         `json:"text"`
	HTML                 string         `json:"html"`
	// Snapshot/lineage fields, set only when the server has an audit
	// store (fairankd -audit-dir): where this audit was persisted,
	// how many jobs the incremental path reused from the previous
	// snapshot, and the longitudinal diff against it.
	SnapshotID  string `json:"snapshot_id,omitempty"`
	SnapshotSeq int    `json:"snapshot_seq,omitempty"`
	Reused      int    `json:"reused,omitempty"`
	DiffText    string `json:"diff_text,omitempty"`
	// Warning reports a degraded-but-successful audit: the report is
	// complete and correct, but a best-effort side step (persisting
	// the snapshot) failed. Operators alert on it; clients keep the
	// 200.
	Warning string `json:"warning,omitempty"`
	// Partial marks a 503 body carrying the completed prefix of a
	// canceled audit (server drain or route deadline). When the
	// server has a store, the partial report was persisted as a
	// resumable snapshot: the next identical audit reuses its
	// completed jobs and finishes the rest.
	Partial bool `json:"partial,omitempty"`
}

type hotspotJSON struct {
	Attribute string `json:"attribute"`
	Jobs      int    `json:"jobs"`
}

// resolvedAudit is a fully prepared batch audit: the population, the
// named rankings to audit over it, the engine config and the batch
// options — everything both the blocking POST /api/audit and the
// streaming GET /api/audit/stream need before running.
type resolvedAudit struct {
	// name labels the report (marketplace or dataset name); datasetID
	// identifies the audited population for snapshot content
	// addressing (preset plus generation knobs, or dataset name).
	name      string
	datasetID string
	data      *dataset.Dataset
	rankings  []audit.Ranking
	cfg       core.Config
	opts      audit.Options
}

// resolveAudit validates an audit request and prepares the run. The
// returned status is the HTTP status to use when err is non-nil.
func (s *Server) resolveAudit(req auditRequest) (*resolvedAudit, int, error) {
	dist, err := fairness.DistanceByName(req.Distance)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	agg, err := fairness.AggregatorByName(req.Aggregator)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	// Validate the strategy before any work (and, for the streaming
	// endpoint, before the SSE headers go out).
	if _, err := mitigate.ByName(req.Strategy); err != nil {
		return nil, http.StatusBadRequest, err
	}
	ra := &resolvedAudit{
		cfg: core.Config{
			Measure:      fairness.Measure{Dist: dist, Agg: agg, Bins: req.Bins},
			Attributes:   req.Attributes,
			MinGroupSize: req.MinGroupSize,
			MaxDepth:     req.MaxDepth,
			Workers:      req.SolverWorkers,
		},
		opts: audit.Options{
			Strategy:         req.Strategy,
			K:                req.K,
			TopN:             req.TopN,
			Workers:          req.Workers,
			Targets:          req.Targets,
			Alpha:            req.Alpha,
			MinExposureRatio: req.MinExposureRatio,
			Seed:             req.MitigateSeed,
		},
	}

	switch {
	case req.Preset != "" && (req.Dataset != "" || len(req.Jobs) > 0):
		return nil, http.StatusBadRequest, fmt.Errorf("server: Preset and Dataset/Jobs are mutually exclusive")
	case req.Preset != "":
		if req.N <= 0 {
			req.N = 1000
		}
		if req.Seed == 0 {
			req.Seed = 1
		}
		m, err := marketplace.PresetByName(req.Preset, req.N, req.Seed)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		rankings, err := audit.Rankings(m)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		ra.name = m.Name
		ra.datasetID = fmt.Sprintf("preset:%s/n=%d/seed=%d", req.Preset, req.N, req.Seed)
		ra.data = m.Workers
		ra.rankings = rankings
	case req.Dataset != "":
		d, err := s.sess.Dataset(req.Dataset)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		if len(req.Jobs) == 0 {
			return nil, http.StatusBadRequest, fmt.Errorf("server: dataset audit needs at least one job {Name, Function}")
		}
		rankings := make([]audit.Ranking, len(req.Jobs))
		for i, j := range req.Jobs {
			fn, err := scoring.Parse(j.Function)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("server: job %q: %w", j.Name, err)
			}
			scores, err := fn.Score(d)
			if err != nil {
				return nil, http.StatusBadRequest, fmt.Errorf("server: job %q: %w", j.Name, err)
			}
			rankings[i] = audit.Ranking{Name: j.Name, Function: fn.String(), Scores: scores}
		}
		// Registered datasets share the session cache, so a re-audit
		// (or the panels that prompted it) reuses the memoized work.
		ra.cfg.Cache = s.sess.SharedCache()
		ra.name = req.Dataset
		ra.datasetID = "dataset:" + req.Dataset
		ra.data = d
		ra.rankings = rankings
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("server: audit needs a Preset or a Dataset with Jobs")
	}
	ra.opts.Faults = s.faults
	ra.opts.Obs = s.reg
	return ra, http.StatusOK, nil
}

// loadBaseline pulls the latest stored snapshot of this audit's
// lineage (if any) so the run can skip jobs whose scores did not
// change. Returns nil when the server has no store or the lineage is
// empty — the run is then a full audit.
func (s *Server) loadBaseline(ra *resolvedAudit) *auditstore.Snapshot {
	if s.store == nil {
		return nil
	}
	params, err := audit.ParamsKey(ra.cfg, ra.opts)
	if err != nil {
		return nil
	}
	prev, err := s.store.Latest(auditstore.ConfigID(ra.datasetID, params))
	if err != nil {
		return nil
	}
	return prev
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	var req auditRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	// Identical concurrent audits coalesce onto one run (and one
	// snapshot); followers replay the leader's bytes.
	status, body, shared := s.flights.do(r.Context(), flightKey("audit", req), func() (int, []byte) {
		return s.runAudit(r, req)
	})
	if shared {
		s.m.coalesced.Inc()
		obsv.SpanFromContext(r.Context()).Set("coalesced", true)
	}
	if body == nil {
		writeErr(w, r, http.StatusServiceUnavailable, fmt.Errorf("server: request abandoned while waiting for an identical in-flight audit"))
		return
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds(s.limits.RetryAfter))
	}
	respond(w, status, body)
}

// runAudit executes one blocking batch audit and renders its (status,
// JSON body) — the flight-group unit shared by coalesced requests.
func (s *Server) runAudit(r *http.Request, req auditRequest) (int, []byte) {
	if err := s.faults.HitContext(r.Context(), "server.audit"); err != nil {
		return errBody(http.StatusInternalServerError, fmt.Errorf("server: %w", err))
	}
	ra, status, err := s.resolveAudit(req)
	if err != nil {
		return errBody(status, err)
	}
	prev := s.loadBaseline(ra)
	if prev != nil {
		ra.opts.Baseline = prev.Baseline(ra.datasetID)
	}

	rep, err := audit.RunRankingsContext(r.Context(), ra.data, ra.rankings, ra.cfg, ra.opts)
	if err != nil {
		if errors.Is(err, audit.ErrCanceled) {
			// Graceful degradation: the completed prefix is persisted
			// as a resumable snapshot (drain or deadline — a dead
			// client still benefits on its retry), and the 503 body
			// says so. The worker pool is already free.
			out := auditResponse{Partial: true, Warning: "audit canceled: " + err.Error()}
			if rep != nil {
				rep.Marketplace = ra.name
			}
			if s.store != nil && rep != nil && len(rep.Jobs) > 0 {
				if snap, serr := auditstore.New(ra.datasetID, ra.cfg, ra.opts, ra.rankings, rep); serr == nil {
					snap.Partial = true
					if _, serr := s.store.Save(snap); serr == nil {
						out.SnapshotID = snap.ID
						out.SnapshotSeq = snap.Seq
						out.Warning += fmt.Sprintf("; %d completed job(s) persisted for resume", len(rep.Jobs))
					}
				}
			}
			st, b, ok := mustJSON(out)
			if !ok {
				return st, b
			}
			return http.StatusServiceUnavailable, b
		}
		return errBody(http.StatusBadRequest, err)
	}
	rep.Marketplace = ra.name

	text, err := report.AuditTable(rep)
	if err != nil {
		return errBody(http.StatusInternalServerError, err)
	}
	out := toAuditResponse(rep, text)
	if s.store != nil {
		snap, serr := auditstore.New(ra.datasetID, ra.cfg, ra.opts, ra.rankings, rep)
		if serr != nil {
			return errBody(http.StatusInternalServerError, serr)
		}
		if _, serr := s.store.Save(snap); serr != nil {
			// Store failure degrades the audit to non-persistent: the
			// client paid for a correct report and gets it, with a
			// warning instead of a 500. The lineage resumes at the
			// next successful save.
			out.Warning = fmt.Sprintf("snapshot not persisted: %v", serr)
		} else {
			out.SnapshotID = snap.ID
			out.SnapshotSeq = snap.Seq
			out.Reused = rep.Reused
			if prev != nil && !prev.Partial {
				if d, derr := audit.Compare(prev.Report, rep); derr == nil {
					if dt, derr := report.AuditDiffTable(d); derr == nil {
						out.DiffText = dt
					}
				}
			}
		}
	}
	st, b, ok := mustJSON(out)
	if !ok {
		return st, b
	}
	return http.StatusOK, b
}

func toAuditResponse(rep *audit.Report, text string) auditResponse {
	out := auditResponse{
		Marketplace:          rep.Marketplace,
		Strategy:             rep.Strategy,
		K:                    rep.K,
		Jobs:                 make([]auditJobJSON, len(rep.Jobs)),
		Worst:                rep.Worst,
		Hotspots:             make([]hotspotJSON, len(rep.Hotspots)),
		Infeasible:           rep.Infeasible,
		MeanUnfairnessBefore: rep.MeanUnfairnessBefore,
		MeanUnfairnessAfter:  rep.MeanUnfairnessAfter,
		MeanParityGapBefore:  rep.MeanParityGapBefore,
		MeanParityGapAfter:   rep.MeanParityGapAfter,
		MeanNDCG:             rep.MeanNDCG,
		MeanDisplacement:     rep.MeanDisplacement,
		ElapsedMS:            float64(rep.Elapsed.Microseconds()) / 1000,
		Text:                 text,
		HTML:                 auditHTML(rep),
	}
	for i, j := range rep.Jobs {
		out.Jobs[i] = auditJobJSON{
			Job:              j.Job,
			Function:         j.Function,
			Groups:           j.Groups,
			Attributes:       j.Attributes,
			Before:           toMetricsJSON(j.Before, j.Groups),
			After:            toMetricsJSON(j.After, j.Groups),
			UnfairnessBefore: j.QuantifiedBefore,
			UnfairnessAfter:  j.QuantifiedAfter,
			NDCG:             j.Utility.NDCG,
			MeanDisplacement: j.Utility.MeanDisplacement,
			Improved:         j.Improved(),
			Infeasible:       j.Infeasible,
			Detail:           j.Detail,
		}
	}
	for i, h := range rep.Hotspots {
		out.Hotspots[i] = hotspotJSON{Attribute: h.Attribute, Jobs: h.Jobs}
	}
	return out
}

// auditHTML renders the audit's summary table for the embedded UI: a
// per-job before/after row set plus the marketplace rollup footer.
func auditHTML(rep *audit.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<h3>Marketplace audit — %s (%d jobs, strategy %s, top-%d)</h3>\n",
		html.EscapeString(rep.Marketplace), len(rep.Jobs), html.EscapeString(rep.Strategy), rep.K)
	b.WriteString("<table class=\"audit\"><thead><tr>" +
		"<th>job</th><th>unfairness</th><th>parity gap</th><th>exposure ratio</th>" +
		fmt.Sprintf("<th>NDCG@%d</th><th>score displ.</th><th>status</th>", rep.K) +
		"</tr></thead><tbody>\n")
	arrow := func(before, after float64) string {
		return fmt.Sprintf("%.4f &rarr; %.4f", before, after)
	}
	for _, j := range rep.Jobs {
		name := html.EscapeString(j.Job)
		if j.Infeasible {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%.4f</td><td>%.4f</td><td>%.4f</td><td>—</td><td>—</td><td class=\"infeasible\">infeasible: %s</td></tr>\n",
				name, j.QuantifiedBefore, j.Before.ParityGap, j.Before.ExposureRatio, html.EscapeString(j.Detail))
			continue
		}
		status := "mitigated"
		if j.Improved() {
			status = "improved"
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%.4f</td><td>%.4f</td><td>%s</td></tr>\n",
			name,
			arrow(j.QuantifiedBefore, j.QuantifiedAfter),
			arrow(j.Before.ParityGap, j.After.ParityGap),
			arrow(j.Before.ExposureRatio, j.After.ExposureRatio),
			j.Utility.NDCG, j.Utility.MeanDisplacement, status)
	}
	b.WriteString("</tbody><tfoot>\n")
	fmt.Fprintf(&b, "<tr><td>mean</td><td>%s</td><td>%s</td><td></td><td>%.4f</td><td>%.4f</td><td>%d infeasible</td></tr>\n",
		arrow(rep.MeanUnfairnessBefore, rep.MeanUnfairnessAfter),
		arrow(rep.MeanParityGapBefore, rep.MeanParityGapAfter),
		rep.MeanNDCG, rep.MeanDisplacement, rep.Infeasible)
	b.WriteString("</tfoot></table>\n")
	fmt.Fprintf(&b, "<p>worst job(s): %s</p>\n", html.EscapeString(strings.Join(rep.Worst, ", ")))
	if len(rep.Hotspots) > 0 {
		parts := make([]string, 0, len(rep.Hotspots))
		for _, h := range rep.Hotspots {
			parts = append(parts, fmt.Sprintf("%s (%d)", html.EscapeString(h.Attribute), h.Jobs))
		}
		fmt.Fprintf(&b, "<p>hotspot attributes: %s</p>\n", strings.Join(parts, ", "))
	}
	return b.String()
}
