package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Golden-file tests pin the exact JSON/HTML the API serves, so engine
// changes (such as the Workers knob or the shared memoization cache)
// cannot silently alter responses. Regenerate with:
//
//	go test ./internal/server -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenQuantifyRequest is the canonical panel request the suite pins.
// Workers is deliberately > 1: the parallel engine must serve the
// byte-identical response the sequential engine recorded.
func goldenQuantifyRequest(workers int) map[string]any {
	return map[string]any{
		"Dataset":    "table1",
		"Function":   "0.3*language_test + 0.7*rating",
		"Attributes": []string{dataset.AttrGender, dataset.AttrLanguage},
		"Workers":    workers,
	}
}

// goldenMitigateRequest is the canonical mitigation request the suite
// pins: repair the Table 1 gender partitioning with constrained
// interleaving under explicit 40/60 targets. The targets bind — the
// mitigated ranking differs from the original and its worst exposure
// ratio improves — so a regression that stops applying the
// constraints changes this response.
func goldenMitigateRequest(workers int) map[string]any {
	return map[string]any{
		"Dataset":    "table1",
		"Function":   "0.3*language_test + 0.7*rating",
		"Attributes": []string{dataset.AttrGender},
		"MaxDepth":   1,
		"Workers":    workers,
		"Strategy":   "detcons",
		"K":          5,
		"Targets":    map[string]float64{"gender=Female": 0.4, "gender=Male": 0.6},
	}
}

// goldenAuditRequest is the canonical batch-audit request the suite
// pins: mitigate every job of a small crowdsourcing marketplace with
// constrained interleaving and re-audit. The population-share floors
// bind on the biased preset — at least one job's top-k parity gap
// visibly improves — so a regression that stops mitigating changes
// this response (see TestGoldenAuditImproves).
func goldenAuditRequest(workers int) map[string]any {
	return map[string]any{
		"Preset":   "crowdsourcing",
		"N":        300,
		"Seed":     1,
		"Strategy": "detcons",
		"K":        10,
		"Workers":  workers,
	}
}

// workLine matches the rendered report's work summary, which embeds
// wall-clock time and cache-dependent eval counters.
var workLine = regexp.MustCompile(`(?m)^work      : .*$`)

// scrubTiming recursively removes the nondeterministic parts of a
// response: the wall-clock field and the work line of the rendered
// text report (its distance-eval counters depend on cache warmth, by
// design).
func scrubTiming(v any) {
	switch t := v.(type) {
	case map[string]any:
		if _, ok := t["elapsed_ms"]; ok {
			t["elapsed_ms"] = 0
		}
		if s, ok := t["text"].(string); ok {
			t["text"] = workLine.ReplaceAllString(s, "work      : [scrubbed]")
		}
		for _, c := range t {
			scrubTiming(c)
		}
	case []any:
		for _, c := range t {
			scrubTiming(c)
		}
	}
}

// canonicalJSON parses a response body, scrubs timing, and re-renders
// it with stable indentation for comparison and storage.
func canonicalJSON(t *testing.T, body []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	scrubTiming(v)
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden file\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func readBody(t *testing.T, res *http.Response) []byte {
	t.Helper()
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestGoldenResponses(t *testing.T) {
	ts := testServer(t)

	get := func(path string) []byte {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, res.StatusCode)
		}
		return readBody(t, res)
	}
	post := func(path string, body any) []byte {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, res.StatusCode)
		}
		return readBody(t, res)
	}

	checkGolden(t, "datasets.golden.json", canonicalJSON(t, get("/api/datasets")))
	checkGolden(t, "quantify.golden.json", canonicalJSON(t, post("/api/quantify", goldenQuantifyRequest(8))))
	checkGolden(t, "mitigate.golden.json", canonicalJSON(t, post("/api/mitigate", goldenMitigateRequest(8))))
	checkGolden(t, "panels.golden.json", canonicalJSON(t, get("/api/panels")))
	checkGolden(t, "panel1.golden.json", canonicalJSON(t, get("/api/panels/1")))
	checkGolden(t, "index.golden.html", get("/"))

	auditBody := canonicalJSON(t, post("/api/audit", goldenAuditRequest(8)))
	checkGolden(t, "audit.golden.json", auditBody)
	// The HTML summary table the UI embeds is pinned on its own, so a
	// renderer change is reviewable as HTML rather than inside a JSON
	// string.
	var auditParsed struct {
		HTML string `json:"html"`
	}
	if err := json.Unmarshal(auditBody, &auditParsed); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "audit_table.golden.html", []byte(auditParsed.HTML))
}

// The pinned audit response must show the mitigation doing visible
// good: at least one job's top-k parity gap strictly improves, and no
// job is left unmitigated. Guards against pinning a no-op golden.
func TestGoldenAuditImproves(t *testing.T) {
	ts := testServer(t)
	buf, err := json.Marshal(goldenAuditRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/audit", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var parsed struct {
		Jobs []struct {
			Job        string `json:"job"`
			Infeasible bool   `json:"infeasible"`
			Before     struct {
				ParityGap float64 `json:"parity_gap"`
			} `json:"before"`
			After struct {
				ParityGap float64 `json:"parity_gap"`
			} `json:"after"`
			NDCG float64 `json:"ndcg"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(readBody(t, res), &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Jobs) == 0 {
		t.Fatal("audit returned no jobs")
	}
	improved := 0
	for _, j := range parsed.Jobs {
		if j.Infeasible {
			t.Errorf("job %q unexpectedly infeasible", j.Job)
			continue
		}
		if j.After.ParityGap < j.Before.ParityGap {
			improved++
		}
		if j.NDCG <= 0 || j.NDCG > 1 {
			t.Errorf("job %q NDCG %f outside (0,1]", j.Job, j.NDCG)
		}
	}
	if improved == 0 {
		t.Error("no job's parity gap improved; the pinned audit is a no-op")
	}
}

// Every worker count serves the same mitigation response — the full
// quantify → mitigate → re-quantify loop inherits the engine's
// determinism guarantee over HTTP.
func TestGoldenMitigateWorkerInvariance(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		sess := core.NewSession()
		if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(sess).Handler())
		buf, err := json.Marshal(goldenMitigateRequest(workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.Post(ts.URL+"/api/mitigate", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		if res.StatusCode != http.StatusOK {
			t.Fatalf("workers=%d: status %d", workers, res.StatusCode)
		}
		body := canonicalJSON(t, readBody(t, res))
		ts.Close()
		// Guard against pinning a no-op: the canonical request's
		// constraints must bind, visibly improving the exposure ratio.
		var parsed struct {
			Before, After struct {
				ExposureRatio float64 `json:"exposure_ratio"`
			}
		}
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Fatal(err)
		}
		if parsed.After.ExposureRatio <= parsed.Before.ExposureRatio {
			t.Errorf("workers=%d: canonical mitigation did not improve the exposure ratio (%f -> %f)",
				workers, parsed.Before.ExposureRatio, parsed.After.ExposureRatio)
		}
		if want == nil {
			want = body
			continue
		}
		if !bytes.Equal(body, want) {
			t.Errorf("workers=%d mitigate response differs:\n%s\nwant:\n%s", workers, body, want)
		}
	}
}

// Every worker count serves the same quantify response: the
// concurrency knob must never leak into API output. Each worker count
// gets a fresh session so caching cannot mask a divergence.
func TestGoldenQuantifyWorkerInvariance(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		sess := core.NewSession()
		if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(sess).Handler())
		buf, err := json.Marshal(goldenQuantifyRequest(workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.Post(ts.URL+"/api/quantify", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body := canonicalJSON(t, readBody(t, res))
		ts.Close()
		if want == nil {
			want = body
			continue
		}
		if !bytes.Equal(body, want) {
			t.Errorf("workers=%d response differs:\n%s\nwant:\n%s", workers, body, want)
		}
	}
}

// A repeated identical request is served from the session cache with
// zero new distance work and the same body (elapsed aside).
func TestGoldenRepeatRequestStable(t *testing.T) {
	ts := testServer(t)
	var first, second []byte
	for i, dst := range []*[]byte{&first, &second} {
		buf, err := json.Marshal(goldenQuantifyRequest(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := http.Post(ts.URL+"/api/quantify", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body := canonicalJSON(t, readBody(t, res))
		// Panel ids increment per request; normalize before comparing.
		*dst = bytes.Replace(body, []byte(fmt.Sprintf(`"id": %d`, i+1)), []byte(`"id": 0`), 1)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("repeat request diverged:\n%s\nvs:\n%s", first, second)
	}
}
