package server

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/audit"
	"repro/internal/auditstore"
	"repro/internal/report"
)

// snapshotMetaJSON is one stored snapshot's listing row: the lineage
// identity plus the headline numbers, without the full per-job
// report.
type snapshotMetaJSON struct {
	ID                   string    `json:"id"`
	Seq                  int       `json:"seq"`
	CreatedAt            time.Time `json:"created_at"`
	Dataset              string    `json:"dataset"`
	Params               string    `json:"params"`
	Strategy             string    `json:"strategy"`
	K                    int       `json:"k"`
	Jobs                 int       `json:"jobs"`
	Infeasible           int       `json:"infeasible"`
	MeanUnfairnessBefore float64   `json:"mean_unfairness_before"`
	MeanUnfairnessAfter  float64   `json:"mean_unfairness_after"`
}

func toSnapshotMeta(s *auditstore.Snapshot) snapshotMetaJSON {
	return snapshotMetaJSON{
		ID:                   s.ID,
		Seq:                  s.Seq,
		CreatedAt:            s.CreatedAt,
		Dataset:              s.Dataset,
		Params:               s.Params,
		Strategy:             s.Report.Strategy,
		K:                    s.Report.K,
		Jobs:                 len(s.Report.Jobs),
		Infeasible:           s.Report.Infeasible,
		MeanUnfairnessBefore: s.Report.MeanUnfairnessBefore,
		MeanUnfairnessAfter:  s.Report.MeanUnfairnessAfter,
	}
}

// historyResponse answers GET /api/audit/history: every stored
// snapshot, or — with ?config=<id> — one lineage plus the
// longitudinal diff of its two newest versions.
type historyResponse struct {
	Snapshots []snapshotMetaJSON `json:"snapshots"`
	Config    string             `json:"config,omitempty"`
	Diff      *audit.Diff        `json:"diff,omitempty"`
	DiffText  string             `json:"diff_text,omitempty"`
}

// GET /api/audit/history serves the audit lifecycle's longitudinal
// memory. Requires an audit store (fairankd -audit-dir); without one
// the endpoint answers 404 so clients can hide the feature.
func (s *Server) handleAuditHistory(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeErr(w, r, http.StatusNotFound, fmt.Errorf("server: no audit store configured (start fairankd with -audit-dir)"))
		return
	}
	out := historyResponse{Snapshots: []snapshotMetaJSON{}}
	if id := r.URL.Query().Get("config"); id != "" {
		versions, err := s.store.Versions(id)
		if err != nil {
			writeErr(w, r, http.StatusInternalServerError, err)
			return
		}
		if len(versions) == 0 {
			writeErr(w, r, http.StatusNotFound, fmt.Errorf("server: no snapshots for config %q", id))
			return
		}
		out.Config = id
		for _, v := range versions {
			out.Snapshots = append(out.Snapshots, toSnapshotMeta(v))
		}
		if len(versions) >= 2 {
			d, err := s.store.Diff(id)
			if err != nil {
				writeErr(w, r, http.StatusInternalServerError, err)
				return
			}
			text, err := report.AuditDiffTable(d)
			if err != nil {
				writeErr(w, r, http.StatusInternalServerError, err)
				return
			}
			out.Diff = d
			out.DiffText = text
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	all, err := s.store.List()
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	for _, snap := range all {
		out.Snapshots = append(out.Snapshots, toSnapshotMeta(snap))
	}
	writeJSON(w, http.StatusOK, out)
}
