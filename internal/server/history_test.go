package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/auditstore"
	"repro/internal/core"
)

func storeServer(t *testing.T) (*httptest.Server, *auditstore.Store) {
	t.Helper()
	st, err := auditstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sess := core.NewSession()
	ts := httptest.NewServer(New(sess, WithAuditStore(st)).Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

func postAudit(t *testing.T, ts *httptest.Server, req map[string]any) auditResponse {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/audit", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var out auditResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// With a store configured, every POST /api/audit persists a snapshot,
// the second audit of the same configuration is fully incremental
// (every job reused), and the response carries the lineage diff.
func TestAuditPersistsAndReaudits(t *testing.T) {
	ts, st := storeServer(t)
	req := goldenAuditRequest(4)

	first := postAudit(t, ts, req)
	if first.SnapshotID == "" || first.SnapshotSeq != 1 {
		t.Fatalf("first audit snapshot %q seq %d, want persisted seq 1", first.SnapshotID, first.SnapshotSeq)
	}
	if first.Reused != 0 {
		t.Errorf("first audit reused %d jobs", first.Reused)
	}
	if first.DiffText != "" {
		t.Errorf("first audit has a diff against nothing: %q", first.DiffText)
	}

	second := postAudit(t, ts, req)
	if second.SnapshotID != first.SnapshotID {
		t.Errorf("same configuration produced lineage %q then %q", first.SnapshotID, second.SnapshotID)
	}
	if second.SnapshotSeq != 2 {
		t.Errorf("second snapshot seq %d, want 2", second.SnapshotSeq)
	}
	if second.Reused != len(second.Jobs) {
		t.Errorf("incremental re-audit reused %d of %d jobs", second.Reused, len(second.Jobs))
	}
	if second.DiffText == "" {
		t.Error("second audit carries no longitudinal diff")
	}

	snaps, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("store holds %d snapshots, want 2", len(snaps))
	}

	// A different configuration starts its own lineage.
	other := goldenAuditRequest(4)
	other["K"] = 5
	third := postAudit(t, ts, other)
	if third.SnapshotID == first.SnapshotID {
		t.Error("different K landed in the same lineage")
	}
	if third.SnapshotSeq != 1 {
		t.Errorf("new lineage starts at seq %d", third.SnapshotSeq)
	}
}

func TestAuditHistoryEndpoint(t *testing.T) {
	ts, _ := storeServer(t)
	req := goldenAuditRequest(4)
	first := postAudit(t, ts, req)
	postAudit(t, ts, req)

	var hist historyResponse
	res := getJSON(t, ts.URL+"/api/audit/history", &hist)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("history status %d", res.StatusCode)
	}
	if len(hist.Snapshots) != 2 {
		t.Fatalf("history lists %d snapshots, want 2", len(hist.Snapshots))
	}
	for i, s := range hist.Snapshots {
		if s.ID != first.SnapshotID || s.Seq != i+1 {
			t.Errorf("snapshot %d = %s seq %d", i, s.ID, s.Seq)
		}
		if s.Jobs == 0 || s.Strategy != "detcons" {
			t.Errorf("snapshot %d meta incomplete: %+v", i, s)
		}
	}

	var lineage historyResponse
	res = getJSON(t, ts.URL+"/api/audit/history?config="+first.SnapshotID, &lineage)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("lineage status %d", res.StatusCode)
	}
	if lineage.Config != first.SnapshotID || len(lineage.Snapshots) != 2 {
		t.Errorf("lineage response %+v", lineage)
	}
	if lineage.Diff == nil || lineage.DiffText == "" {
		t.Fatal("two-version lineage has no diff")
	}
	if !lineage.Diff.Stable() {
		t.Errorf("identical re-audit diffs as unstable: %+v", lineage.Diff)
	}

	res, err := http.Get(ts.URL + "/api/audit/history?config=nope")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown config status %d, want 404", res.StatusCode)
	}
}

// Without a store the history endpoint is absent (404), and audits
// carry no snapshot fields.
func TestAuditHistoryWithoutStore(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/audit/history")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("history without a store answered %d, want 404", res.StatusCode)
	}
	out := postAudit(t, ts, goldenAuditRequest(4))
	if out.SnapshotID != "" || out.SnapshotSeq != 0 || out.DiffText != "" {
		t.Errorf("storeless audit leaked snapshot fields: %+v", out)
	}
}
