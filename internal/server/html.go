package server

import (
	"fmt"
	"html"
	"strings"

	"repro/internal/mitigate"
)

// indexHTML is the embedded single-page UI with the strategy selector
// rendered from the mitigate registry — see indexHTMLTemplate.
var indexHTML = strings.Replace(indexHTMLTemplate, "<!--STRATEGY-OPTIONS-->", strategyOptions(), 1)

// strategyOptions renders one <option> per registered mitigation
// strategy, so a strategy added to mitigate.Strategies() appears in
// the UI without touching this package. "fair" stays the pre-selected
// default, matching the CLI and the API.
func strategyOptions() string {
	var b strings.Builder
	for _, name := range mitigate.Strategies() {
		selected := ""
		if name == "fair" {
			selected = " selected"
		}
		fmt.Fprintf(&b, `<option title="%s"%s>%s</option>`,
			html.EscapeString(mitigate.Describe(name)), selected, html.EscapeString(name))
	}
	return b.String()
}

// indexHTMLTemplate is the embedded single-page UI: a Configuration
// box on the left (dataset / scoring function / fairness criterion /
// filter) and result panels on the right, mirroring the layout of the
// paper's Figure 3. Panels render the server-side ASCII trees in
// monospace so the UI and the CLI show identical content.
const indexHTMLTemplate = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>FaiRank — fairness of ranking explorer</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; display: flex; min-height: 100vh; }
  #config { width: 330px; padding: 16px; background: #f4f5f7; border-right: 1px solid #ddd; }
  #config h1 { font-size: 18px; margin: 0 0 12px; }
  #config label { display: block; margin-top: 10px; font-size: 12px; color: #444; }
  #config input, #config select { width: 100%; box-sizing: border-box; padding: 5px; margin-top: 2px; }
  #config button { margin-top: 14px; width: 100%; padding: 8px; background: #2457a7; color: #fff; border: 0; cursor: pointer; }
  #config button.secondary { background: #5a6b84; }
  #panels { flex: 1; padding: 16px; display: flex; flex-wrap: wrap; gap: 14px; align-items: flex-start; }
  .panel { border: 1px solid #ccc; border-radius: 6px; background: #fff; max-width: 640px; }
  .panel header { display: flex; justify-content: space-between; padding: 6px 10px; background: #e8ecf3; font-size: 13px; }
  .panel pre { margin: 0; padding: 10px; font-size: 12px; overflow-x: auto; }
  .panel .close { cursor: pointer; color: #a22; border: 0; background: none; }
  #error { color: #a22; font-size: 12px; margin-top: 10px; white-space: pre-wrap; }
  .panel .audit-summary { padding: 10px; font-size: 13px; }
  table.audit { border-collapse: collapse; font-size: 12px; }
  table.audit th, table.audit td { border: 1px solid #ccc; padding: 3px 7px; text-align: left; }
  table.audit thead { background: #e8ecf3; }
  table.audit tfoot { background: #f4f5f7; font-weight: 600; }
  table.audit .infeasible { color: #a22; }
</style>
</head>
<body>
<div id="config">
  <h1>FaiRank</h1>
  <label>Dataset <select id="dataset"></select></label>
  <label>Scoring function <input id="function" placeholder="0.3*language_test + 0.7*rating"></label>
  <label><input type="checkbox" id="rankonly" style="width:auto"> rank-only (hide the function)</label>
  <label>Filter (attr=value, comma separated) <input id="filter" placeholder="language=English"></label>
  <label>Objective <select id="objective">
    <option value="most">most unfair</option>
    <option value="least">least unfair</option>
  </select></label>
  <label>Aggregation <select id="aggregator">
    <option>avg</option><option>max</option><option>min</option><option>variance</option>
  </select></label>
  <label>Distance <select id="distance">
    <option>emd</option><option>emd-hat</option><option>ks</option><option>tv</option>
  </select></label>
  <label>Histogram bins <input id="bins" type="number" value="5" min="1"></label>
  <button onclick="quantify()">Quantify fairness</button>
  <label>Mitigation strategy <select id="strategy"><!--STRATEGY-OPTIONS--></select></label>
  <label>Sampling seed (exposure-lp) <input id="seed" type="number" value="1" min="1"></label>
  <label>Top-k cutoff <input id="topk" type="number" value="10" min="1"></label>
  <button onclick="mitigate()">Mitigate &amp; re-quantify</button>
  <button onclick="auditAll()">Audit whole marketplace…</button>
  <button onclick="auditStream()">Audit (streamed, per-job)…</button>
  <button class="secondary" onclick="generate()">Generate marketplace…</button>
  <button class="secondary" onclick="anonymize()">k-anonymize dataset…</button>
  <div id="error"></div>
</div>
<div id="panels"></div>
<script>
async function api(path, opts) {
  const res = await fetch(path, opts);
  const body = await res.json();
  if (!res.ok) throw new Error(body.error || res.statusText);
  return body;
}
function setError(e) { document.getElementById('error').textContent = e ? String(e.message || e) : ''; }
async function refreshDatasets() {
  const list = await api('/api/datasets');
  const sel = document.getElementById('dataset');
  const current = sel.value;
  sel.innerHTML = '';
  for (const d of list) {
    const o = document.createElement('option');
    o.value = d.name; o.textContent = d.name + ' (' + d.rows + ' rows)';
    sel.appendChild(o);
  }
  if (current) sel.value = current;
}
function addPanel(p) {
  const div = document.createElement('div');
  div.className = 'panel';
  const head = document.createElement('header');
  const title = document.createElement('span');
  title.textContent = '#' + p.id + ' ' + p.dataset + ' — ' + p.function;
  const close = document.createElement('button');
  close.className = 'close'; close.textContent = '✕';
  close.onclick = async () => { await api('/api/panels/' + p.id, {method: 'DELETE'}); div.remove(); };
  head.appendChild(title); head.appendChild(close);
  const pre = document.createElement('pre');
  pre.textContent = p.text || '';
  div.appendChild(head); div.appendChild(pre);
  document.getElementById('panels').appendChild(div);
}
async function quantify() {
  setError();
  try {
    const filter = document.getElementById('filter').value
      .split(',').map(s => s.trim()).filter(Boolean);
    const p = await api('/api/quantify', {method: 'POST', body: JSON.stringify({
      Dataset: document.getElementById('dataset').value,
      Function: document.getElementById('function').value,
      RankOnly: document.getElementById('rankonly').checked,
      Filter: filter,
      Objective: document.getElementById('objective').value,
      Aggregator: document.getElementById('aggregator').value,
      Distance: document.getElementById('distance').value,
      Bins: parseInt(document.getElementById('bins').value, 10) || 5,
    })});
    addPanel(p);
  } catch (e) { setError(e); }
}
async function mitigate() {
  setError();
  try {
    const filter = document.getElementById('filter').value
      .split(',').map(s => s.trim()).filter(Boolean);
    const out = await api('/api/mitigate', {method: 'POST', body: JSON.stringify({
      Dataset: document.getElementById('dataset').value,
      Function: document.getElementById('function').value,
      Filter: filter,
      Aggregator: document.getElementById('aggregator').value,
      Distance: document.getElementById('distance').value,
      Bins: parseInt(document.getElementById('bins').value, 10) || 5,
      Strategy: document.getElementById('strategy').value,
      K: parseInt(document.getElementById('topk').value, 10) || 0,
      Seed: parseInt(document.getElementById('seed').value, 10) || 0,
    })});
    addPanel({id: out.panel.id, dataset: out.panel.dataset,
      function: out.panel.function, text: out.text + '\n' + (out.panel.text || '')});
  } catch (e) { setError(e); }
}
async function auditAll() {
  setError();
  try {
    const preset = prompt('Preset to audit (crowdsourcing, taskrabbit, fiverr, qapa):', 'crowdsourcing');
    if (!preset) return;
    const n = parseInt(prompt('Workers:', '1000'), 10) || 1000;
    const out = await api('/api/audit', {method: 'POST', body: JSON.stringify({
      Preset: preset, N: n,
      Strategy: document.getElementById('strategy').value,
      K: parseInt(document.getElementById('topk').value, 10) || 0,
      Aggregator: document.getElementById('aggregator').value,
      Distance: document.getElementById('distance').value,
      Bins: parseInt(document.getElementById('bins').value, 10) || 5,
    })});
    const div = document.createElement('div');
    div.className = 'panel';
    const head = document.createElement('header');
    const title = document.createElement('span');
    title.textContent = 'audit ' + out.marketplace + ' — ' + out.strategy;
    const close = document.createElement('button');
    close.className = 'close'; close.textContent = '✕';
    close.onclick = () => div.remove();
    head.appendChild(title); head.appendChild(close);
    const body = document.createElement('div');
    body.className = 'audit-summary';
    body.innerHTML = out.html;
    div.appendChild(head); div.appendChild(body);
    document.getElementById('panels').appendChild(div);
  } catch (e) { setError(e); }
}
function auditStream() {
  setError();
  const preset = prompt('Preset to audit (crowdsourcing, taskrabbit, fiverr, qapa):', 'crowdsourcing');
  if (!preset) return;
  const n = parseInt(prompt('Workers:', '1000'), 10) || 1000;
  const params = new URLSearchParams({
    preset: preset, n: n,
    strategy: document.getElementById('strategy').value,
    k: document.getElementById('topk').value,
    aggregator: document.getElementById('aggregator').value,
    distance: document.getElementById('distance').value,
    bins: document.getElementById('bins').value,
  });
  const div = document.createElement('div');
  div.className = 'panel';
  const head = document.createElement('header');
  const title = document.createElement('span');
  title.textContent = 'audit (streaming) ' + preset + '…';
  const close = document.createElement('button');
  close.className = 'close'; close.textContent = '✕';
  head.appendChild(title); head.appendChild(close);
  const body = document.createElement('div');
  body.className = 'audit-summary';
  const table = document.createElement('table');
  table.className = 'audit';
  table.innerHTML = '<thead><tr><th>#</th><th>job</th><th>unfairness</th>' +
    '<th>parity gap</th><th>NDCG</th><th>status</th></tr></thead><tbody></tbody>';
  const foot = document.createElement('p');
  foot.textContent = 'auditing…';
  body.appendChild(table); body.appendChild(foot);
  div.appendChild(head); div.appendChild(body);
  document.getElementById('panels').appendChild(div);

  // One row per SSE job event: the table grows while the rest of the
  // marketplace is still being audited.
  const es = new EventSource('/api/audit/stream?' + params);
  close.onclick = () => { es.close(); div.remove(); };
  const fmt = v => (typeof v === 'number' ? v.toFixed(4) : v);
  es.addEventListener('job', e => {
    const j = JSON.parse(e.data);
    const tr = document.createElement('tr');
    const status = j.infeasible ? ('infeasible: ' + (j.detail || '')) : (j.improved ? 'improved' : 'mitigated');
    const cells = [
      j.index + 1, j.job,
      j.infeasible ? fmt(j.unfairness_before) : fmt(j.unfairness_before) + ' → ' + fmt(j.unfairness_after),
      fmt(j.before.parity_gap) + ' → ' + (j.infeasible ? '—' : fmt(j.after.parity_gap)),
      j.infeasible ? '—' : fmt(j.ndcg), status,
    ];
    for (const c of cells) {
      const td = document.createElement('td');
      td.textContent = c;
      if (j.infeasible) td.className = 'infeasible';
      tr.appendChild(td);
    }
    table.tBodies[0].appendChild(tr);
  });
  es.addEventListener('rollup', e => {
    const r = JSON.parse(e.data);
    title.textContent = 'audit ' + r.marketplace + ' — ' + r.strategy;
    foot.textContent = r.job_count + ' jobs · mean unfairness ' + fmt(r.mean_unfairness_before) +
      ' → ' + fmt(r.mean_unfairness_after) + ' · mean NDCG@' + r.k + ' ' + fmt(r.mean_ndcg) +
      ' · worst: ' + (r.worst || []).join(', ') +
      (r.snapshot_id ? ' · snapshot ' + r.snapshot_id + ' v' + r.snapshot_seq : '');
    es.close();
  });
  es.addEventListener('error', e => {
    if (e.data) { setError(JSON.parse(e.data).error); }
    foot.textContent = 'stream closed';
    es.close();
  });
}
async function generate() {
  setError();
  try {
    const preset = prompt('Preset (crowdsourcing, taskrabbit, fiverr):', 'crowdsourcing');
    if (!preset) return;
    const n = parseInt(prompt('Workers:', '2000'), 10) || 2000;
    const out = await api('/api/datasets/generate', {method: 'POST',
      body: JSON.stringify({preset: preset, n: n, seed: 1})});
    await refreshDatasets();
    alert('Generated ' + out.name + '. Jobs:\n' + (out.jobs || []).join('\n'));
  } catch (e) { setError(e); }
}
async function anonymize() {
  setError();
  try {
    const k = parseInt(prompt('k:', '5'), 10);
    if (!k) return;
    const algorithm = prompt('Algorithm (mondrian, datafly):', 'mondrian');
    const out = await api('/api/datasets/anonymize', {method: 'POST',
      body: JSON.stringify({dataset: document.getElementById('dataset').value, k: k, algorithm: algorithm})});
    await refreshDatasets();
    alert('Created ' + out.name);
  } catch (e) { setError(e); }
}
refreshDatasets().catch(setError);
</script>
</body>
</html>
`
