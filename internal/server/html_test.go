package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/mitigate"
)

// The strategy <select> is rendered from mitigate.Strategies() at
// init, so a strategy registered in the mitigate package can never be
// missing from the UI (and a removed one can never linger).
func TestIndexHTMLListsEveryStrategy(t *testing.T) {
	if strings.Contains(indexHTML, "<!--STRATEGY-OPTIONS-->") {
		t.Fatal("strategy placeholder was not substituted")
	}
	for _, name := range mitigate.Strategies() {
		if !strings.Contains(indexHTML, ">"+name+"</option>") {
			t.Errorf("index HTML is missing strategy option %q", name)
		}
		if desc := mitigate.Describe(name); desc == "" {
			t.Errorf("strategy %q has no description for its option title", name)
		}
	}
	if !strings.Contains(indexHTML, `selected>fair</option>`) {
		t.Error("default selection is not the fair strategy")
	}
	// The options carry their descriptions as hover titles.
	if !strings.Contains(indexHTML, `<option title="`) {
		t.Error("strategy options carry no title attributes")
	}
	// The seed input feeds the exposure-lp draw.
	if !strings.Contains(indexHTML, `id="seed"`) {
		t.Error("index HTML is missing the sampling-seed input")
	}
}

// exposure-lp through POST /api/mitigate returns the distribution
// block, and the same seed returns the same bytes.
func TestMitigateEndpointDistribution(t *testing.T) {
	ts := testServer(t)
	body := map[string]any{
		"Dataset":  "table1",
		"Function": "0.3*language_test + 0.7*rating",
		"Strategy": "exposure-lp",
		"Seed":     7,
	}
	var out mitigateResponse
	res := postJSON(t, ts.URL+"/api/mitigate", body, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("mitigate status: %d (%+v)", res.StatusCode, out)
	}
	d := out.Distribution
	if d == nil {
		t.Fatal("exposure-lp response carries no distribution")
	}
	if d.Seed != 7 || d.Support == 0 || len(d.Weights) != d.Support {
		t.Errorf("distribution malformed: %+v", d)
	}
	if d.Sampled < 0 || d.Sampled >= d.Support {
		t.Errorf("sampled index %d outside support %d", d.Sampled, d.Support)
	}
	sum := 0.0
	for _, w := range d.Weights {
		if w <= 0 {
			t.Errorf("non-positive weight %g", w)
		}
		sum += w
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Errorf("weights sum to %g, want 1", sum)
	}
	var again mitigateResponse
	postJSON(t, ts.URL+"/api/mitigate", body, &again)
	if again.Distribution == nil || again.Distribution.Sampled != d.Sampled ||
		again.Distribution.ExpectedRatio != d.ExpectedRatio {
		t.Errorf("same seed diverged: %+v vs %+v", d, again.Distribution)
	}
	// Deterministic strategies omit the block entirely.
	var det mitigateResponse
	postJSON(t, ts.URL+"/api/mitigate", map[string]any{
		"Dataset":  "table1",
		"Function": "0.3*language_test + 0.7*rating",
		"Strategy": "detcons",
		"K":        5,
	}, &det)
	if det.Distribution != nil {
		t.Errorf("deterministic strategy returned a distribution: %+v", det.Distribution)
	}
}
