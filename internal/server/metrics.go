// Observability layer of the serving stack: the per-server metrics
// registry (served as Prometheus text on GET /metrics and as JSON
// inside GET /api/health), the request-trace ring (GET /api/traces,
// ?trace=1 response envelopes), per-request IDs, and structured
// request logging. robust.go's guard() is the single place all of it
// hooks into the request path.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/obsv"
)

// traceRingSize bounds the in-memory ring of recent request traces.
const traceRingSize = 64

// WithLogger routes the server's structured request logs (one line
// per completed request at Debug, panics at Error) to l. The default
// logger discards everything, keeping tests and embedders quiet.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// Metrics returns the server's registry — the single source of truth
// behind GET /metrics, the health counters and the load generator's
// cross-checks.
func (s *Server) Metrics() *obsv.Registry { return s.reg }

// serverMetrics holds the pre-resolved registry handles the request
// path touches, so steady-state instrumentation is atomic increments
// on cached pointers rather than map lookups.
type serverMetrics struct {
	reg *obsv.Registry

	shedRead  *obsv.Counter
	shedHeavy *obsv.Counter
	panics    *obsv.Counter
	coalesced *obsv.Counter
	traces    *obsv.Counter
	waitRead  *obsv.Histogram
	waitHeavy *obsv.Histogram
	latencies map[string]*obsv.Histogram // by route; written only during New

	// Solver counters published after each quantify/mitigate run:
	// cumulative totals for rates, last-run gauges for "what did the
	// most recent run cost".
	distanceEvals   *obsv.Counter
	cachedDistances *obsv.Counter
	reusedDistances *obsv.Counter
	prunedPairs     *obsv.Counter
	splitsEvaluated *obsv.Counter
	lastDistance    *obsv.Gauge
	lastCached      *obsv.Gauge
	lastReused      *obsv.Gauge
	lastPruned      *obsv.Gauge
	lastSplits      *obsv.Gauge
	lastElapsed     *obsv.Gauge
}

func newServerMetrics(reg *obsv.Registry) *serverMetrics {
	reg.Help("fairankd_requests_total", "completed requests by route and status code")
	reg.Help("fairankd_request_seconds", "request latency by route (admission wait included)")
	reg.Help("fairankd_admission_wait_seconds", "time spent waiting for an in-flight slot, shed requests included")
	reg.Help("fairankd_shed_total", "requests refused with 429 because their class was saturated past the queue wait")
	reg.Help("fairankd_panics_total", "handler panics converted into 500s")
	reg.Help("fairankd_coalesced_total", "requests served from another identical in-flight request's result")
	reg.Help("fairankd_traces_total", "request traces recorded into the ring")
	reg.Help("fairank_core_distance_evals_total", "histogram-distance evaluations requested by the solver")
	reg.Help("fairank_core_cached_distances_total", "distance evaluations answered by the memoization cache")
	reg.Help("fairank_core_reused_distances_total", "distance evaluations reused from a predecessor scope (incremental re-quantify)")
	reg.Help("fairank_core_pruned_pairs_total", "pairwise solves skipped by EMD lower bounds")
	return &serverMetrics{
		reg:             reg,
		shedRead:        reg.Counter("fairankd_shed_total", obsv.Label{Key: "class", Value: "read"}),
		shedHeavy:       reg.Counter("fairankd_shed_total", obsv.Label{Key: "class", Value: "heavy"}),
		panics:          reg.Counter("fairankd_panics_total"),
		coalesced:       reg.Counter("fairankd_coalesced_total"),
		traces:          reg.Counter("fairankd_traces_total"),
		waitRead:        reg.Histogram("fairankd_admission_wait_seconds", nil, obsv.Label{Key: "class", Value: "read"}),
		waitHeavy:       reg.Histogram("fairankd_admission_wait_seconds", nil, obsv.Label{Key: "class", Value: "heavy"}),
		latencies:       map[string]*obsv.Histogram{},
		distanceEvals:   reg.Counter("fairank_core_distance_evals_total"),
		cachedDistances: reg.Counter("fairank_core_cached_distances_total"),
		reusedDistances: reg.Counter("fairank_core_reused_distances_total"),
		prunedPairs:     reg.Counter("fairank_core_pruned_pairs_total"),
		splitsEvaluated: reg.Counter("fairank_core_splits_evaluated_total"),
		lastDistance:    reg.Gauge("fairank_core_last_distance_evals"),
		lastCached:      reg.Gauge("fairank_core_last_cached_distances"),
		lastReused:      reg.Gauge("fairank_core_last_reused_distances"),
		lastPruned:      reg.Gauge("fairank_core_last_pruned_pairs"),
		lastSplits:      reg.Gauge("fairank_core_last_splits_evaluated"),
		lastElapsed:     reg.Gauge("fairank_core_last_elapsed_seconds"),
	}
}

// routeLatency pre-registers a route's latency histogram. Called only
// during route registration (single goroutine), so the map needs no
// lock; guard() holds the returned handle.
func (m *serverMetrics) routeLatency(route string) *obsv.Histogram {
	h, ok := m.latencies[route]
	if !ok {
		h = m.reg.Histogram("fairankd_request_seconds", nil, obsv.Label{Key: "route", Value: route})
		m.latencies[route] = h
	}
	return h
}

// requests resolves the per-route/status counter. Status codes are
// open-ended, so this goes through the registry's get-or-create path
// (a read-locked map hit after the first request).
func (m *serverMetrics) requests(route string, code int) *obsv.Counter {
	return m.reg.Counter("fairankd_requests_total",
		obsv.Label{Key: "route", Value: route},
		obsv.Label{Key: "code", Value: strconv.Itoa(code)})
}

// publishStats folds one solver run's counters into the registry.
// Called by the handlers after each quantify/mitigate pass — never
// from inside the solver, which stays observation-free.
func (s *Server) publishStats(st core.Stats) {
	m := s.m
	m.distanceEvals.Add(uint64(st.DistanceEvals))
	m.cachedDistances.Add(uint64(st.CachedDistances))
	m.reusedDistances.Add(uint64(st.ReusedDistances))
	m.prunedPairs.Add(uint64(st.PrunedPairs))
	m.splitsEvaluated.Add(uint64(st.SplitsEvaluated))
	m.lastDistance.Set(float64(st.DistanceEvals))
	m.lastCached.Set(float64(st.CachedDistances))
	m.lastReused.Set(float64(st.ReusedDistances))
	m.lastPruned.Set(float64(st.PrunedPairs))
	m.lastSplits.Set(float64(st.SplitsEvaluated))
	m.lastElapsed.Set(st.Elapsed.Seconds())
}

// ridKey carries the per-request ID in the request context; it shows
// up in the X-Request-Id header, error envelopes, traces and logs.
type ridKey struct{}

func withRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, ridKey{}, rid)
}

func requestID(ctx context.Context) string {
	rid, _ := ctx.Value(ridKey{}).(string)
	return rid
}

// handleMetrics serves the registry in Prometheus text exposition
// format. Unguarded like /api/health: a scrape must never be shed,
// counted as traffic, or refused during drain.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

// tracesResponse is the JSON answer of GET /api/traces.
type tracesResponse struct {
	Traces []obsv.TraceJSON `json:"traces"`
}

// handleTraces serves the bounded ring of recent request traces, most
// recent first; ?id=<trace id> returns a single trace (404 once it
// has been evicted from the ring).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		tj, ok := s.tracer.Find(id)
		if !ok {
			writeErr(w, r, http.StatusNotFound, fmt.Errorf("server: no trace %q in the ring", id))
			return
		}
		writeJSON(w, http.StatusOK, tj)
		return
	}
	out := s.tracer.Recent()
	if out == nil {
		out = []obsv.TraceJSON{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{Traces: out})
}

// statusWriter records the response status for metrics, tracing and
// logs while passing everything else through — including Flush (SSE)
// and Unwrap (http.ResponseController deadlines).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// traceBuffer captures a ?trace=1 response so guard can wrap it in a
// {trace, response} envelope once the root span has ended. It shares
// the real header map, so handler-set headers survive the detour.
type traceBuffer struct {
	h      http.Header
	status int
	buf    bytes.Buffer
}

func (b *traceBuffer) Header() http.Header { return b.h }

func (b *traceBuffer) WriteHeader(code int) {
	if b.status == 0 {
		b.status = code
	}
}

func (b *traceBuffer) Write(p []byte) (int, error) {
	if b.status == 0 {
		b.status = http.StatusOK
	}
	return b.buf.Write(p)
}

// tracedResponse is the ?trace=1 envelope.
type tracedResponse struct {
	Trace    obsv.TraceJSON  `json:"trace"`
	Response json.RawMessage `json:"response"`
}

// flush writes the buffered response out through w. JSON responses
// are wrapped in the trace envelope; anything else (errors written as
// JSON still qualify; only non-JSON bodies pass through) is replayed
// verbatim so the envelope never corrupts a body it cannot embed.
func (b *traceBuffer) flush(w http.ResponseWriter, span *obsv.Span) {
	status := b.status
	if status == 0 {
		status = http.StatusOK
	}
	if !strings.HasPrefix(b.h.Get("Content-Type"), "application/json") {
		w.WriteHeader(status)
		w.Write(b.buf.Bytes())
		return
	}
	body := b.buf.Bytes()
	if len(body) == 0 {
		body = []byte("null")
	}
	out, err := json.Marshal(tracedResponse{Trace: span.Render(), Response: body})
	if err != nil {
		w.WriteHeader(status)
		w.Write(b.buf.Bytes())
		return
	}
	b.h.Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(out)
}
