package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obsv"
)

// A fresh server's /metrics and /api/health are deterministic — every
// counter zero, every route histogram pre-registered — so both are
// pinned as golden files: a renamed or dropped metric is an API break
// for dashboards and shows up here as a diff.
func TestGoldenFreshMetricsAndHealth(t *testing.T) {
	ts := testServer(t)

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("GET /metrics Content-Type = %q", ct)
	}
	checkGolden(t, "metrics.golden.txt", readBody(t, res))

	res, err = http.Get(ts.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/health: status %d", res.StatusCode)
	}
	checkGolden(t, "health.golden.json", canonicalJSON(t, readBody(t, res)))
}

// metricsText fetches /metrics as a string.
func metricsText(t *testing.T, base string) string {
	t.Helper()
	res, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return string(readBody(t, res))
}

// mustContain asserts every want line appears in the exposition.
func mustContain(t *testing.T, text string, wants ...string) {
	t.Helper()
	for _, w := range wants {
		if !strings.Contains(text, w) {
			t.Errorf("metrics exposition missing %q", w)
		}
	}
}

// One served quantify request shows up everywhere it should: the
// per-route request counter and latency histogram, the solver's
// cumulative and last-run series, and the health snapshot's counters.
func TestMetricsCountServedRequests(t *testing.T) {
	ts := testServer(t)
	buf, err := json.Marshal(goldenQuantifyRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/quantify", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("quantify status %d", res.StatusCode)
	}
	if rid := res.Header.Get("X-Request-Id"); rid == "" {
		t.Error("no X-Request-Id header on a served request")
	}
	if tid := res.Header.Get("X-Trace-Id"); tid == "" {
		t.Error("no X-Trace-Id header on a heavy-route request")
	}

	text := metricsText(t, ts.URL)
	mustContain(t, text,
		`fairankd_requests_total{code="200",route="quantify"} 1`,
		`fairankd_request_seconds_count{route="quantify"} 1`,
		`fairankd_admission_wait_seconds_count{class="heavy"} 1`,
		`fairankd_traces_total 1`,
	)
	// The solver ran, so its counters moved; exact values belong to the
	// engine's own tests, non-zero is what the pipeline proves.
	for _, name := range []string{"fairank_core_distance_evals_total ", "fairank_core_last_distance_evals "} {
		i := strings.Index(text, name)
		if i < 0 {
			t.Fatalf("metrics exposition missing %q", name)
		}
		line := text[i : i+strings.IndexByte(text[i:], '\n')]
		if strings.HasSuffix(line, " 0") {
			t.Errorf("%s still zero after a quantify", strings.TrimSpace(name))
		}
	}
}

// tracedEnvelope is the ?trace=1 response wrapper.
type tracedEnvelope struct {
	Trace    obsv.TraceJSON  `json:"trace"`
	Response json.RawMessage `json:"response"`
}

// spanNames flattens a span tree into the set of span names.
func spanNames(sj obsv.SpanJSON, into map[string]int) {
	into[sj.Name]++
	for _, c := range sj.Children {
		spanNames(c, into)
	}
}

// findSpan returns the first span with the given name, depth first.
func findSpan(sj obsv.SpanJSON, name string) (obsv.SpanJSON, bool) {
	if sj.Name == name {
		return sj, true
	}
	for _, c := range sj.Children {
		if got, ok := findSpan(c, name); ok {
			return got, true
		}
	}
	return obsv.SpanJSON{}, false
}

// attrValue pulls a span attribute by key.
func attrValue(sj obsv.SpanJSON, key string) (any, bool) {
	for _, a := range sj.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// A traced quantify returns the span tree inline, reaching through
// the session into the solver, with the solver's counters attached as
// span attributes — the request-scoped view of core.Stats.
func TestTraceEnvelopeReachesSolver(t *testing.T) {
	ts := testServer(t)
	buf, err := json.Marshal(goldenQuantifyRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/quantify?trace=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	var env tracedEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not a trace envelope: %v\n%s", err, body)
	}
	if env.Trace.ID == "" || env.Trace.ID != res.Header.Get("X-Trace-Id") {
		t.Errorf("trace id %q does not match X-Trace-Id %q", env.Trace.ID, res.Header.Get("X-Trace-Id"))
	}
	if env.Trace.Root.Name != "http.quantify" {
		t.Errorf("root span %q, want http.quantify", env.Trace.Root.Name)
	}
	for _, name := range []string{"session.quantify", "core.quantify"} {
		if _, ok := findSpan(env.Trace.Root, name); !ok {
			t.Errorf("trace missing span %q", name)
		}
	}
	solver, _ := findSpan(env.Trace.Root, "core.quantify")
	if _, ok := attrValue(solver, "distance_evals"); !ok {
		t.Error("core.quantify span carries no distance_evals attribute")
	}
	if status, _ := attrValue(env.Trace.Root, "status"); fmt.Sprint(status) != "200" {
		t.Errorf("root status attr = %v, want 200", status)
	}
	// The inner response is the same panel summary an untraced request
	// gets.
	var panel struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(env.Response, &panel); err != nil || panel.ID == 0 {
		t.Errorf("enveloped response is not a panel summary: %v\n%s", err, env.Response)
	}
}

// A traced batch audit's span tree reaches audit-job granularity, and
// the same trace stays retrievable from the ring by its id.
func TestTraceReachesAuditJobs(t *testing.T) {
	_, ts, _, _ := robustServer(t, Limits{}, false)
	status, body, err := rawPost(ts.URL+"/api/audit?trace=1", testAuditRequest())
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var env tracedEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not a trace envelope: %v", err)
	}
	names := map[string]int{}
	spanNames(env.Trace.Root, names)
	if names["audit.run"] != 1 {
		t.Errorf("trace has %d audit.run spans, want 1", names["audit.run"])
	}
	if names["audit.job"] < 2 {
		t.Errorf("trace has %d audit.job spans, want the whole batch", names["audit.job"])
	}
	// Each job span descends into its own mitigation loop.
	if names["mitigate.evaluate"] == 0 || names["core.quantify"] == 0 {
		t.Errorf("job spans do not reach the solver: %v", names)
	}

	res, err := http.Get(ts.URL + "/api/traces?id=" + env.Trace.ID)
	if err != nil {
		t.Fatal(err)
	}
	ringBody := readBody(t, res)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/traces?id=%s: status %d", env.Trace.ID, res.StatusCode)
	}
	var ringTrace obsv.TraceJSON
	if err := json.Unmarshal(ringBody, &ringTrace); err != nil {
		t.Fatal(err)
	}
	ringNames := map[string]int{}
	spanNames(ringTrace.Root, ringNames)
	if ringNames["audit.job"] != names["audit.job"] {
		t.Errorf("ring trace has %d audit.job spans, envelope had %d", ringNames["audit.job"], names["audit.job"])
	}
}

// A request that panics still files its span (with the panic attr and
// the 500 status) and increments the panic counter — crashes are the
// requests observability must not lose.
func TestPanicStillRecordsSpanAndCounter(t *testing.T) {
	s, ts, inj, _ := robustServer(t, Limits{}, false)
	inj.PanicOn("server.quantify", 1, "poisoned request")
	status, _, err := rawPost(ts.URL+"/api/quantify", testQuantifyRequest())
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", status)
	}
	if got := s.Healthz().Panics; got != 1 {
		t.Errorf("Panics = %d, want 1", got)
	}
	mustContain(t, metricsText(t, ts.URL),
		"fairankd_panics_total 1",
		`fairankd_requests_total{code="500",route="quantify"} 1`,
	)

	res, err := http.Get(ts.URL + "/api/traces")
	if err != nil {
		t.Fatal(err)
	}
	var ring tracesResponse
	if err := json.Unmarshal(readBody(t, res), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Traces) != 1 {
		t.Fatalf("trace ring holds %d traces, want 1", len(ring.Traces))
	}
	root := ring.Traces[0].Root
	if v, ok := attrValue(root, "panic"); !ok || !strings.Contains(fmt.Sprint(v), "poisoned request") {
		t.Errorf("panicked request's span has no panic attr (attrs: %v)", root.Attrs)
	}
	if v, _ := attrValue(root, "status"); fmt.Sprint(v) != "500" {
		t.Errorf("panicked request's span status attr = %v, want 500", v)
	}
}

// Error envelopes carry the request ID from the X-Request-Id header,
// so a pasted error is correlatable with server logs and traces.
func TestErrorCarriesRequestID(t *testing.T) {
	ts := testServer(t)
	res, err := http.Post(ts.URL+"/api/quantify", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, res)
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", res.StatusCode)
	}
	var e struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatal(err)
	}
	if e.RequestID == "" || e.RequestID != res.Header.Get("X-Request-Id") {
		t.Errorf("error request_id %q does not match X-Request-Id %q", e.RequestID, res.Header.Get("X-Request-Id"))
	}
}

// SSE streams run race-clean under tracing: the heartbeat goroutine,
// the per-job Emit callbacks and the span tree share one request. The
// stream cannot carry an inline envelope, so its trace is reachable
// only through X-Trace-Id + the ring.
func TestStreamTracedAndRingBounded(t *testing.T) {
	_, ts, _, _ := robustServer(t, Limits{MaxHeavy: 4, StreamHeartbeat: -1}, false)
	var wg sync.WaitGroup
	ids := make([]string, 3)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := http.Get(ts.URL + "/api/audit/stream?preset=crowdsourcing&n=120&seed=1&strategy=detcons&k=10&trace=1")
			if err != nil {
				return
			}
			defer res.Body.Close()
			ids[i] = res.Header.Get("X-Trace-Id")
			b, _ := io.ReadAll(res.Body)
			if !bytes.Contains(b, []byte("event: rollup")) {
				t.Errorf("stream %d ended without a rollup event", i)
			}
			// ?trace=1 must not buffer (and so break) the event stream.
			if bytes.Contains(b, []byte(`"trace"`)) && bytes.HasPrefix(b, []byte("{")) {
				t.Errorf("stream %d was wrapped in a trace envelope", i)
			}
		}(i)
	}
	wg.Wait()
	res, err := http.Get(ts.URL + "/api/traces")
	if err != nil {
		t.Fatal(err)
	}
	var ring tracesResponse
	if err := json.Unmarshal(readBody(t, res), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Traces) != len(ids) {
		t.Fatalf("ring holds %d traces, want %d", len(ring.Traces), len(ids))
	}
	for _, id := range ids {
		if id == "" {
			t.Error("stream response carried no X-Trace-Id")
			continue
		}
		found := false
		for _, tr := range ring.Traces {
			if tr.ID == id {
				found = true
				if tr.Root.Name != "http.audit_stream" {
					t.Errorf("trace %s root = %q", id, tr.Root.Name)
				}
			}
		}
		if !found {
			t.Errorf("stream trace %s missing from the ring", id)
		}
	}
}

// postRecorded issues one in-process request against the handler —
// no listener, so a tight request loop stays cheap.
func postRecorded(s *Server, path string, body any) (*httptest.ResponseRecorder, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec, nil
}

// The trace ring is bounded and goroutine-free: a burst of traced
// requests far past the ring capacity leaves at most traceRingSize
// entries and no extra goroutines — tracing cannot become the leak it
// is meant to find.
func TestTraceRingBoundedNoGoroutineLeak(t *testing.T) {
	sess := core.NewSession()
	if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
		t.Fatal(err)
	}
	s := New(sess)
	baseline := runtime.NumGoroutine()
	req := testQuantifyRequest()
	for i := 0; i < traceRingSize+8; i++ {
		rec, err := postRecorded(s, "/api/quantify?trace=1", req)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	if got := len(s.tracer.Recent()); got != traceRingSize {
		t.Errorf("ring holds %d traces after overflow, want %d", got, traceRingSize)
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+2 })
}

// The legacy health counters and the registry agree by construction
// now (single source of truth); pin that Shed/Panics/Coalesced in the
// health JSON equal the registry's counters.
func TestHealthCountersAreRegistryCounters(t *testing.T) {
	s, ts, _, _ := robustServer(t, Limits{MaxHeavy: 1, QueueWait: 1}, false)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rawPost(ts.URL+"/api/quantify", testQuantifyRequest())
		}()
	}
	wg.Wait()
	snap := s.Metrics().Snapshot()
	var regShed uint64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "fairankd_shed_total") {
			regShed += v
		}
	}
	if h := s.Healthz(); h.Shed != regShed {
		t.Errorf("health shed %d != registry shed %d", h.Shed, regShed)
	}
}
