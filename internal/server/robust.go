// Robustness layer: admission control, deadline propagation, panic
// recovery, request coalescing and drain — what lets fairankd stay up
// under load instead of being a bare mux.
//
// Every route is wrapped by guard(), which in order (1) recovers
// panics into a 500 plus a counter, (2) refuses new work while the
// server drains (503), (3) acquires a bounded in-flight slot for the
// route's class — cheap reads vs. expensive solver work — shedding
// load with 429 + Retry-After when the queue wait expires, and
// (4) derives the request context: the route's deadline, cut short by
// client disconnect or server drain. Handlers thread that context
// through Session.Resolve → quantify → mitigate → audit, where the
// engine observes it at worker-pool granularity (core.QuantifyContext)
// — so a dead client stops burning CPU mid-quantify, and an aborted
// run can never poison the shared memoization cache.
//
// Identical concurrent quantify/audit requests are coalesced: one
// leader computes (and, for audits, persists) while followers wait
// for its bytes — the request-level complement of the engine's
// single-flight memoization cache.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obsv"
)

// Limits configures admission control and per-route deadlines. The
// zero value means "no limits beyond sanity defaults" — existing
// embedders and tests keep their behavior; fairankd sets real values
// from flags.
type Limits struct {
	// MaxReads bounds concurrently served cheap requests (index, UI,
	// dataset/panel listings, history). 0 = 256.
	MaxReads int
	// MaxHeavy bounds concurrently served solver-backed requests
	// (quantify, mitigate, audit, stream, generate, anonymize) — the
	// route class that burns CPU and memory. 0 = 4.
	MaxHeavy int
	// QueueWait is how long a request waits for an in-flight slot
	// before being shed with 429. 0 = 100ms.
	QueueWait time.Duration
	// RetryAfter is the value of the Retry-After header on shed
	// responses. 0 = 1s.
	RetryAfter time.Duration
	// QuantifyTimeout bounds one quantify/mitigate/generate/anonymize
	// request; 0 = no deadline.
	QuantifyTimeout time.Duration
	// AuditTimeout bounds one blocking batch audit; 0 = no deadline.
	// SSE streams are exempt — they are the designed way to run long
	// audits — and rely on heartbeats plus client-disconnect
	// cancellation instead.
	AuditTimeout time.Duration
	// StreamHeartbeat is the interval between SSE comment heartbeats
	// keeping idle proxies from killing long audit streams. 0 = 15s;
	// negative disables.
	StreamHeartbeat time.Duration
}

// withDefaults fills the zero fields.
func (l Limits) withDefaults() Limits {
	if l.MaxReads == 0 {
		l.MaxReads = 256
	}
	if l.MaxHeavy == 0 {
		l.MaxHeavy = 4
	}
	if l.QueueWait == 0 {
		l.QueueWait = 100 * time.Millisecond
	}
	if l.RetryAfter == 0 {
		l.RetryAfter = time.Second
	}
	if l.StreamHeartbeat == 0 {
		l.StreamHeartbeat = 15 * time.Second
	}
	return l
}

// WithLimits configures admission control and route deadlines.
func WithLimits(l Limits) Option {
	return func(s *Server) { s.limits = l.withDefaults() }
}

// WithFaults arms a fault-injection harness on the server's handler
// sites ("server.quantify", "server.mitigate", "server.audit",
// "server.stream") and on every audit's per-job site. Test-only.
func WithFaults(in *faultinject.Injector) Option {
	return func(s *Server) { s.faults = in }
}

// Health is the server's liveness/saturation snapshot, served by
// GET /api/health and read by tests and the load generator.
type Health struct {
	// Draining is true once Drain was called: new work is refused
	// with 503 while in-flight requests finish or snapshot.
	Draining bool `json:"draining"`
	// InflightReads / InflightHeavy are the currently admitted
	// requests per class.
	InflightReads int `json:"inflight_reads"`
	InflightHeavy int `json:"inflight_heavy"`
	// Shed counts requests refused with 429 because their class was
	// saturated past QueueWait.
	Shed uint64 `json:"shed"`
	// Panics counts handler panics converted into 500s.
	Panics uint64 `json:"panics"`
	// Coalesced counts requests served from another identical
	// in-flight request's result.
	Coalesced uint64 `json:"coalesced"`
}

// routeClass picks which in-flight semaphore admits a request.
type routeClass int

const (
	classRead routeClass = iota
	classHeavy
)

// semaphore is a bounded in-flight counter with queue-with-deadline
// semantics.
type semaphore struct {
	slots chan struct{}
}

func newSemaphore(n int) *semaphore { return &semaphore{slots: make(chan struct{}, n)} }

// acquire waits up to wait (cut short by ctx) for a slot.
func (s *semaphore) acquire(ctx context.Context, wait time.Duration) bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case s.slots <- struct{}{}:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

func (s *semaphore) release() { <-s.slots }

func (s *semaphore) inflight() int { return len(s.slots) }

// Drain moves the server into shutdown mode: new requests are refused
// with 503, and the contexts of in-flight requests are canceled so
// long audits stop at worker-pool granularity and persist partial
// snapshots (when a store is configured) instead of holding the
// drain open. Safe to call more than once.
func (s *Server) Drain() { s.drainCancel() }

// draining reports whether Drain was called.
func (s *Server) draining() bool { return s.drainCtx.Err() != nil }

// Healthz returns the current health counters. The counters live in
// the metrics registry — this is the same data /metrics exports, in
// the JSON shape the health route has always had.
func (s *Server) Healthz() Health {
	return Health{
		Draining:      s.draining(),
		InflightReads: s.readSem.inflight(),
		InflightHeavy: s.heavySem.inflight(),
		Shed:          s.m.shedRead.Value() + s.m.shedHeavy.Value(),
		Panics:        s.m.panics.Value(),
		Coalesced:     s.m.coalesced.Value(),
	}
}

// healthResponse is GET /api/health: the historical Health fields plus
// a full registry snapshot, so one poll answers both "is it up" and
// "what is it doing".
type healthResponse struct {
	Health
	Metrics obsv.Snapshot `json:"metrics"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{Health: s.Healthz(), Metrics: s.reg.Snapshot()})
}

// guard wraps a handler with the robustness and observability layers:
// request ID + per-route metrics + (heavy routes) tracing, panic
// recovery, drain refusal, class admission and the derived request
// context (route deadline ∧ client disconnect ∧ server drain).
func (s *Server) guard(route string, class routeClass, timeout time.Duration, h http.HandlerFunc) http.HandlerFunc {
	latency := s.m.routeLatency(route)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		rid := fmt.Sprintf("r%08d", s.rid.Add(1))
		w.Header().Set("X-Request-Id", rid)
		r = r.WithContext(withRequestID(r.Context(), rid))

		// Heavy routes get a span tree: the trace rides the request
		// context through session → solver → audit jobs, and lands in
		// the ring when the root span ends below.
		var span *obsv.Span
		if class == classHeavy {
			var ctx context.Context
			ctx, span = s.tracer.Start(r.Context(), "http."+route)
			span.Set("route", route)
			span.Set("request_id", rid)
			w.Header().Set("X-Trace-Id", span.ID())
			r = r.WithContext(ctx)
		}

		// ?trace=1 asks for the span tree inline: buffer the response
		// and wrap it in a {trace, response} envelope once the root
		// span has ended. SSE streams can't be buffered — their trace
		// stays reachable via X-Trace-Id + /api/traces.
		sw := &statusWriter{ResponseWriter: w}
		var out http.ResponseWriter = sw
		var tb *traceBuffer
		if span != nil && route != "audit_stream" && r.URL.Query().Get("trace") == "1" {
			tb = &traceBuffer{h: w.Header()}
			out = tb
		}

		defer func() {
			if rec := recover(); rec != nil {
				// Headers may already be out (mid-stream panic); the
				// write is then a no-op and the client sees a
				// truncated response instead of a dead server. The
				// span still files: a panicked request leaves a trace.
				s.m.panics.Inc()
				span.Set("panic", fmt.Sprint(rec))
				s.log.Error("panic", "route", route, "request_id", rid, "panic", fmt.Sprint(rec))
				writeErr(out, r, http.StatusInternalServerError, fmt.Errorf("server: internal error: %v", rec))
			}
			status := sw.Status()
			if tb != nil && tb.status != 0 {
				status = tb.status
			}
			span.Set("status", status)
			span.End()
			if tb != nil {
				tb.flush(sw, span)
			}
			latency.ObserveSeconds(int64(time.Since(t0)))
			s.m.requests(route, status).Inc()
			s.log.Debug("request", "route", route, "request_id", rid,
				"status", status, "dur", time.Since(t0))
		}()

		if s.draining() {
			writeErr(out, r, http.StatusServiceUnavailable, fmt.Errorf("server: draining"))
			return
		}
		sem, wait, shed := s.readSem, s.m.waitRead, s.m.shedRead
		if class == classHeavy {
			sem, wait, shed = s.heavySem, s.m.waitHeavy, s.m.shedHeavy
		}
		w0 := time.Now()
		admitted := sem.acquire(r.Context(), s.limits.QueueWait)
		wait.ObserveSeconds(int64(time.Since(w0)))
		if !admitted {
			shed.Inc()
			span.Set("shed", true)
			out.Header().Set("Retry-After", retryAfterSeconds(s.limits.RetryAfter))
			writeErr(out, r, http.StatusTooManyRequests, fmt.Errorf("server: saturated (%d in flight); retry later", sem.inflight()))
			return
		}
		defer sem.release()
		ctx, cancel := context.WithCancel(r.Context())
		if timeout > 0 {
			ctx, cancel = context.WithTimeout(r.Context(), timeout)
		}
		defer cancel()
		// Drain reaches into in-flight requests: when it fires, this
		// request's context ends and the solver aborts at its next
		// cancellation point.
		stop := context.AfterFunc(s.drainCtx, cancel)
		defer stop()
		h(out, r.WithContext(ctx))
	}
}

// ctxStatus maps a context-shaped failure to its HTTP answer: 503
// with Retry-After, so well-behaved clients back off and retry
// against a server that is merely busy or draining (the engine
// guarantees the retry is bit-identical to a cold run). Returns 0 for
// errors that are not cancellation/deadline.
func (s *Server) ctxStatus(r *http.Request, err error) int {
	if err == nil {
		return 0
	}
	if ctxErr := context.Cause(r.Context()); ctxErr != nil || s.draining() {
		return http.StatusServiceUnavailable
	}
	return 0
}

// flightGroup coalesces identical in-flight requests: the first
// caller (leader) computes the response; followers block until it is
// done and replay its exact bytes. Entries exist only while the
// leader runs — sequential identical requests each compute, so
// nothing is ever served stale.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done   chan struct{}
	status int
	body   []byte
}

// do runs fn under key, or waits for the identical in-flight call.
// The bool reports whether the result was shared from a leader.
// Followers abandoned by their own context (or whose leader died
// without publishing) get a 503.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (int, []byte)) (int, []byte, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.status, c.body, true
		case <-ctx.Done():
			return http.StatusServiceUnavailable, nil, true
		}
	}
	c := &flightCall{done: make(chan struct{}), status: http.StatusServiceUnavailable}
	g.calls[key] = c
	g.mu.Unlock()
	defer func() {
		// Runs even when fn panics: followers unblock with the 503
		// default instead of hanging, and the entry never leaks.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.status, c.body = fn()
	return c.status, c.body, false
}

// flightKey canonicalizes a decoded request struct into a coalescing
// key. Struct field order is fixed, so identical requests — however
// their JSON was formatted — produce identical keys.
func flightKey(route string, req any) string {
	b, err := json.Marshal(req)
	if err != nil {
		return ""
	}
	return route + "\x00" + string(b)
}

// retryAfterSeconds formats a Retry-After header value, rounding up
// to whole seconds (the header's unit) with a 1s floor.
func retryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// respond writes a coalesced (status, body) answer.
func respond(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// mustJSON marshals a response the handler itself produced; a marshal
// failure is a programming error surfaced as a 500 envelope.
func mustJSON(v any) (int, []byte, bool) {
	b, err := json.Marshal(v)
	if err != nil {
		eb, _ := json.Marshal(apiError{Error: err.Error()})
		return http.StatusInternalServerError, eb, false
	}
	return 0, b, true
}

// errBody builds the JSON error envelope as bytes for flight results.
func errBody(status int, err error) (int, []byte) {
	b, _ := json.Marshal(apiError{Error: err.Error()})
	return status, b
}
