package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/auditstore"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultinject"
)

// robustServer builds a server with the fault-injection harness armed
// and (optionally) an audit store, exposing the *Server for Drain /
// Healthz and the injector for arming rules.
func robustServer(t *testing.T, limits Limits, withStore bool) (*Server, *httptest.Server, *faultinject.Injector, *auditstore.Store) {
	t.Helper()
	sess := core.NewSession()
	if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(1)
	opts := []Option{WithLimits(limits), WithFaults(inj)}
	var st *auditstore.Store
	if withStore {
		var err error
		st, err = auditstore.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st.SetFaults(inj)
		opts = append(opts, WithAuditStore(st))
	}
	s := New(sess, opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, inj, st
}

// testAuditRequest is the canonical small audit the robustness suite
// runs: 4 jobs over a 120-worker crowdsourcing preset, sequentially
// (Workers 1), so "the Nth job" is a deterministic program point.
func testAuditRequest() auditRequest {
	return auditRequest{Preset: "crowdsourcing", N: 120, Seed: 1, Strategy: "detcons", K: 10, Workers: 1}
}

func testQuantifyRequest() core.PanelRequest {
	return core.PanelRequest{
		Dataset:    "table1",
		Function:   "0.3*language_test + 0.7*rating",
		Attributes: []string{"gender", "language"},
	}
}

// rawPost is postJSON without the testing.T plumbing, safe to call
// from helper goroutines (where t.Fatal is off limits).
func rawPost(url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	return res.StatusCode, b, err
}

// scrubWorkLine drops the solver-stats line ("work : N distance
// evals, ...") from a rendered result: it reports cache hits and
// wall-clock time, not the quantification itself.
func scrubWorkLine(text string) string {
	lines := strings.Split(text, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "work ") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// scrubAuditResponse zeroes the fields that legitimately differ
// between two identical audits: wall-clock time and snapshot lineage
// bookkeeping. What remains must be bit-identical.
func scrubAuditResponse(a *auditResponse) {
	a.ElapsedMS = 0
	a.SnapshotID, a.SnapshotSeq, a.Reused = "", 0, 0
	a.DiffText, a.Warning = "", ""
}

// Degradation path 1 (overload): a saturated heavy class sheds load
// with 429 + Retry-After instead of queueing, and the shed request
// leaves the shared cache intact — the retry matches a run on a fresh
// server.
func TestOverloadSheds429WithRetryAfter(t *testing.T) {
	s, ts, inj, _ := robustServer(t, Limits{MaxHeavy: 1, QueueWait: 5 * time.Millisecond, RetryAfter: 3 * time.Second}, false)
	inj.Delay("server.quantify", 400*time.Millisecond)

	done := make(chan struct{})
	go func() {
		defer close(done)
		rawPost(ts.URL+"/api/quantify", testQuantifyRequest())
	}()
	// The slot is provably held once the leader reached the handler
	// site (admission happens before it).
	waitFor(t, func() bool { return inj.Hits("server.quantify") >= 1 })

	// A *different* quantify (identical ones would coalesce, not
	// shed) finds the class saturated.
	other := testQuantifyRequest()
	other.Attributes = []string{"gender"}
	res := postJSON(t, ts.URL+"/api/quantify", other, nil)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request: status %d, want 429", res.StatusCode)
	}
	if got := res.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if s.Healthz().Shed == 0 {
		t.Fatal("shed counter did not move")
	}
	<-done

	// The shed request retries clean: same result as a cold server.
	var retry, cold panelSummary
	postJSON(t, ts.URL+"/api/quantify", other, &retry)
	_, ts2, _, _ := robustServer(t, Limits{}, false)
	postJSON(t, ts2.URL+"/api/quantify", other, &cold)
	retry.ElapsedMS, cold.ElapsedMS = 0, 0
	retry.ID, cold.ID = 0, 0 // the shed server already holds the leader's panel
	// The rendered text's "work" line reports cache/timing stats, which
	// legitimately differ between a warm retry and a cold server.
	retry.Text, cold.Text = scrubWorkLine(retry.Text), scrubWorkLine(cold.Text)
	if !reflect.DeepEqual(retry, cold) {
		t.Fatalf("retry after shed diverged from cold run:\n%+v\nvs\n%+v", retry, cold)
	}
}

// Degradation path 2 (store failure): a snapshot write error degrades
// the audit to non-persistent — 200, complete report, a warning — and
// the lineage resumes at the next successful save.
func TestStoreFailureDegradesToNonPersistent(t *testing.T) {
	_, ts, inj, _ := robustServer(t, Limits{}, true)
	inj.FailNext("auditstore.save", 1, errors.New("disk full"))

	var first auditResponse
	res := postJSON(t, ts.URL+"/api/audit", testAuditRequest(), &first)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("degraded audit: status %d, want 200", res.StatusCode)
	}
	if !strings.Contains(first.Warning, "snapshot not persisted") || !strings.Contains(first.Warning, "disk full") {
		t.Fatalf("warning = %q, want snapshot-not-persisted with cause", first.Warning)
	}
	if first.SnapshotID != "" || first.SnapshotSeq != 0 {
		t.Fatalf("degraded audit claims snapshot %s-%d", first.SnapshotID, first.SnapshotSeq)
	}
	if len(first.Jobs) != 4 {
		t.Fatalf("degraded audit returned %d jobs, want the complete report (4)", len(first.Jobs))
	}

	var second auditResponse
	postJSON(t, ts.URL+"/api/audit", testAuditRequest(), &second)
	if second.Warning != "" {
		t.Fatalf("second audit warned: %q", second.Warning)
	}
	if second.SnapshotID == "" || second.SnapshotSeq != 1 {
		t.Fatalf("second audit snapshot %q seq %d, want persisted seq 1", second.SnapshotID, second.SnapshotSeq)
	}
	scrubAuditResponse(&first)
	scrubAuditResponse(&second)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("degraded and persisted audits returned different reports")
	}
}

// Degradation path 3 (client cancel): a client that hangs up mid-audit
// frees the worker pool, persists the completed prefix as a resumable
// partial snapshot, and the retry — which resumes from it — is
// bit-identical to a cold run.
func TestClientCancelFreesPoolAndResumes(t *testing.T) {
	s, ts, inj, st := robustServer(t, Limits{}, true)

	// The client hangs up exactly as job 2 of 4 starts; the injected
	// per-job delay guarantees the cancellation lands while job 2 is
	// still inside its context-aware sleep, so exactly 1 job completed.
	ctx := inj.CancelOn("audit.job", 2, context.Background())
	inj.DelayHits("audit.job", 2, 4, 300*time.Millisecond)
	body, _ := json.Marshal(testAuditRequest())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/api/audit", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := http.DefaultClient.Do(req); err == nil {
		// The server may have written the 503 before the hangup was
		// observed; either way the audit was canceled.
		res.Body.Close()
	}

	// The pool frees: the handler finishes (persisting the snapshot on
	// its way out) and in-flight drains to zero.
	waitFor(t, func() bool { return s.Healthz().InflightHeavy == 0 })
	snaps, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || !snaps[0].Partial {
		t.Fatalf("store holds %d snapshot(s), want 1 partial", len(snaps))
	}
	if n := len(snaps[0].Report.Jobs); n != 1 {
		t.Fatalf("partial snapshot holds %d job(s), want the 1 completed before cancel", n)
	}

	// The retry resumes from the partial snapshot and matches a cold
	// run on a fresh server bit for bit.
	var retry, cold auditResponse
	res := postJSON(t, ts.URL+"/api/audit", testAuditRequest(), &retry)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("retry: status %d, want 200", res.StatusCode)
	}
	if retry.Reused != 1 {
		t.Fatalf("retry reused %d job(s), want 1 from the partial snapshot", retry.Reused)
	}
	if retry.SnapshotID != snaps[0].ID || retry.SnapshotSeq != 2 {
		t.Fatalf("retry snapshot %s-%d, want same lineage %s seq 2", retry.SnapshotID, retry.SnapshotSeq, snaps[0].ID)
	}
	if retry.DiffText != "" {
		t.Fatal("retry diffed against a partial snapshot")
	}
	_, ts2, _, _ := robustServer(t, Limits{}, false)
	postJSON(t, ts2.URL+"/api/audit", testAuditRequest(), &cold)
	scrubAuditResponse(&retry)
	scrubAuditResponse(&cold)
	if !reflect.DeepEqual(retry, cold) {
		t.Fatal("resumed retry diverged from cold run")
	}
}

// A handler panic becomes a 500 plus a counter, not a dead process,
// and the next request is served normally.
func TestPanicRecoveryKeepsServerAlive(t *testing.T) {
	s, ts, inj, _ := robustServer(t, Limits{}, false)
	inj.PanicOn("server.quantify", 1, "poisoned request")

	var apiErr apiError
	res := postJSON(t, ts.URL+"/api/quantify", testQuantifyRequest(), &apiErr)
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("poisoned request: status %d, want 500", res.StatusCode)
	}
	if !strings.Contains(apiErr.Error, "poisoned request") {
		t.Fatalf("error body %q does not name the panic", apiErr.Error)
	}
	if got := s.Healthz().Panics; got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
	res = postJSON(t, ts.URL+"/api/quantify", testQuantifyRequest(), nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("request after panic: status %d, want 200", res.StatusCode)
	}
}

// Identical concurrent quantify requests coalesce onto one solver
// run: one leader computes, followers replay its exact bytes.
func TestIdenticalQuantifyRequestsCoalesce(t *testing.T) {
	s, ts, inj, _ := robustServer(t, Limits{MaxHeavy: 8}, false)
	inj.Delay("server.quantify", 500*time.Millisecond)

	// The leader provably holds the flight entry (its injected delay
	// runs inside it) before any follower posts.
	var leaderBody []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, leaderBody, _ = rawPost(ts.URL+"/api/quantify", testQuantifyRequest())
	}()
	waitFor(t, func() bool { return inj.Hits("server.quantify") >= 1 })

	const followers = 3
	bodies := make([][]byte, followers)
	var wg sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, bodies[i], _ = rawPost(ts.URL+"/api/quantify", testQuantifyRequest())
		}(i)
	}
	wg.Wait()
	<-done
	for i := 0; i < followers; i++ {
		if !bytes.Equal(leaderBody, bodies[i]) {
			t.Fatalf("follower %d got different bytes than the leader", i)
		}
	}
	if got := inj.Hits("server.quantify"); got != 1 {
		t.Fatalf("solver ran %d time(s), want 1 (coalesced)", got)
	}
	if got := s.Healthz().Coalesced; got != followers {
		t.Fatalf("coalesced counter = %d, want %d", got, followers)
	}
}

// Drain refuses new work with 503 and converts an in-flight audit
// into a 503 + resumable partial snapshot for the still-connected
// client.
func TestDrainShedsNewWorkAndSnapshotsInflight(t *testing.T) {
	s, ts, inj, st := robustServer(t, Limits{}, true)
	inj.Delay("audit.job", 100*time.Millisecond)

	var inflightStatus int
	var inflightBody []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		inflightStatus, inflightBody, _ = rawPost(ts.URL+"/api/audit", testAuditRequest())
	}()
	waitFor(t, func() bool { return inj.Hits("audit.job") >= 2 })
	s.Drain()

	res := postJSON(t, ts.URL+"/api/audit", testAuditRequest(), nil)
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", res.StatusCode)
	}
	<-done
	if inflightStatus != http.StatusServiceUnavailable {
		t.Fatalf("drained in-flight audit: status %d, want 503", inflightStatus)
	}
	var inflight auditResponse
	if err := json.Unmarshal(inflightBody, &inflight); err != nil {
		t.Fatalf("drained audit body %q: %v", inflightBody, err)
	}
	if !inflight.Partial {
		t.Fatal("drained audit response not marked partial")
	}
	if inflight.SnapshotID == "" {
		t.Fatalf("drained audit persisted no snapshot (warning: %q)", inflight.Warning)
	}
	snap, err := st.Latest(inflight.SnapshotID)
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Partial || len(snap.Report.Jobs) == 0 || len(snap.Report.Jobs) >= 4 {
		t.Fatalf("drain snapshot: partial=%t jobs=%d, want partial with a strict prefix", snap.Partial, len(snap.Report.Jobs))
	}
}

// The SSE stream emits comment heartbeats between job events so idle
// proxies keep the connection, and still ends with the rollup.
func TestStreamHeartbeat(t *testing.T) {
	_, ts, inj, _ := robustServer(t, Limits{StreamHeartbeat: 10 * time.Millisecond}, false)
	inj.Delay("audit.job", 50*time.Millisecond)

	res, err := http.Get(ts.URL + "/api/audit/stream?preset=crowdsourcing&n=120&seed=1&strategy=detcons&k=10&workers=1")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), ": hb\n\n") {
		t.Fatal("stream carried no heartbeat comments")
	}
	if !strings.Contains(string(body), "event: rollup") {
		t.Fatal("stream did not finish with a rollup")
	}
}

// Canceled requests do not leak goroutines: after a burst of
// mid-audit hangups, the process returns to its baseline.
func TestCanceledRequestsDontLeakGoroutines(t *testing.T) {
	_, ts, inj, _ := robustServer(t, Limits{MaxHeavy: 8}, false)
	inj.Delay("audit.job", 50*time.Millisecond)
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		// Each round's client hangs up as its second job starts (hit
		// counts accumulate across rounds, so the trigger is absolute).
		ctx := inj.CancelOn("audit.job", inj.Hits("audit.job")+2, context.Background())
		body, _ := json.Marshal(testAuditRequest())
		req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/api/audit", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if res, err := http.DefaultClient.Do(req); err == nil {
			res.Body.Close()
		}
	}
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+3 })
}

// waitFor polls cond up to ~5s; the deterministic injector makes the
// awaited states certain, the poll only absorbs scheduling latency.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
