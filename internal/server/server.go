// Package server exposes FaiRank's interactive exploration over HTTP:
// a JSON API plus an embedded single-page UI reproducing the workflow
// of the paper's Figure 3 — a Configuration box (dataset, scoring
// function, fairness criterion, filters), side-by-side result panels
// with partitioning trees, and per-node statistics.
//
// POST /api/mitigate closes the explore-and-repair loop server-side:
// it quantifies the most unfair partitioning, re-ranks it with a
// mitigation strategy (FA*IR, constrained interleaving or exposure
// capping; see internal/mitigate), re-quantifies the mitigated
// ranking, and registers the result as a panel next to the
// explorations that led to it.
//
// POST /api/audit scales that loop to a whole marketplace: every job
// of a generated preset (or every supplied function over a registered
// dataset) is quantified, mitigated and re-quantified over a bounded
// worker pool, and the response carries the per-job before/after
// fairness, the NDCG@k utility loss, the marketplace rollups
// (worst-N jobs, attribute hotspots, infeasible tally) and an HTML
// summary table for the UI.
//
// Quantify requests accept a Workers field bounding the solver's
// concurrency (0 = GOMAXPROCS, 1 = sequential); every worker count
// produces an identical response. All requests against one server
// share the session's memoization cache, so repeated or overlapping
// explorations reuse histogram and EMD work across requests (except
// requests with Filter or Normalize, whose derived populations are
// request-local).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/anonymize"
	"repro/internal/auditstore"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/histogram"
	"repro/internal/marketplace"
	"repro/internal/mitigate"
	"repro/internal/obsv"
	"repro/internal/partition"
	"repro/internal/report"
)

// Server wires a core.Session to HTTP handlers.
type Server struct {
	sess   *core.Session
	mux    *http.ServeMux
	store  *auditstore.Store
	limits Limits
	faults *faultinject.Injector

	// Admission control + lifecycle state (see robust.go).
	readSem     *semaphore
	heavySem    *semaphore
	drainCtx    context.Context
	drainCancel context.CancelFunc
	flights     flightGroup

	// Observability (see metrics.go): every counter the old atomics
	// held now lives in the registry, so /metrics, /api/health, logs
	// and the load generator read one source of truth.
	reg    *obsv.Registry
	tracer *obsv.Tracer
	m      *serverMetrics
	log    *slog.Logger
	rid    atomic.Uint64
}

// Option configures optional server subsystems.
type Option func(*Server)

// WithAuditStore enables the audit lifecycle endpoints: POST
// /api/audit persists every report as a versioned snapshot (and
// re-audits incrementally against the previous one), and GET
// /api/audit/history serves the stored lineages and their
// longitudinal diffs.
func WithAuditStore(st *auditstore.Store) Option {
	return func(s *Server) { s.store = st }
}

// New returns a server over the given session.
func New(sess *core.Session, opts ...Option) *Server {
	s := &Server{
		sess:   sess,
		mux:    http.NewServeMux(),
		limits: Limits{}.withDefaults(),
		reg:    obsv.NewRegistry(),
		tracer: obsv.NewTracer(traceRingSize),
		log:    slog.New(slog.DiscardHandler),
	}
	for _, o := range opts {
		o(s)
	}
	s.readSem = newSemaphore(s.limits.MaxReads)
	s.heavySem = newSemaphore(s.limits.MaxHeavy)
	s.drainCtx, s.drainCancel = context.WithCancel(context.Background())
	s.m = newServerMetrics(s.reg)
	s.tracer.CountRecorded(s.m.traces)
	if s.store != nil {
		s.store.SetObserver(s.reg)
	}
	// Liveness numbers export as gauge functions — sampled at scrape
	// time, never maintained on the request path.
	s.reg.GaugeFunc("fairankd_draining", func() float64 {
		if s.draining() {
			return 1
		}
		return 0
	})
	s.reg.GaugeFunc("fairankd_inflight", func() float64 { return float64(s.readSem.inflight()) },
		obsv.Label{Key: "class", Value: "read"})
	s.reg.GaugeFunc("fairankd_inflight", func() float64 { return float64(s.heavySem.inflight()) },
		obsv.Label{Key: "class", Value: "heavy"})
	s.reg.GaugeFunc("fairank_core_cache_scopes", func() float64 {
		return float64(s.sess.SharedCache().Scopes())
	})
	l := s.limits
	s.mux.HandleFunc("GET /", s.guard("index", classRead, 0, s.handleIndex))
	// Health, metrics and traces stay unguarded: a probe or scrape
	// must never be shed, counted as traffic, or refused during drain.
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/datasets", s.guard("datasets", classRead, 0, s.handleDatasets))
	s.mux.HandleFunc("POST /api/datasets/generate", s.guard("generate", classHeavy, l.QuantifyTimeout, s.handleGenerate))
	s.mux.HandleFunc("POST /api/datasets/anonymize", s.guard("anonymize", classHeavy, l.QuantifyTimeout, s.handleAnonymize))
	s.mux.HandleFunc("POST /api/quantify", s.guard("quantify", classHeavy, l.QuantifyTimeout, s.handleQuantify))
	s.mux.HandleFunc("POST /api/mitigate", s.guard("mitigate", classHeavy, l.QuantifyTimeout, s.handleMitigate))
	s.mux.HandleFunc("POST /api/audit", s.guard("audit", classHeavy, l.AuditTimeout, s.handleAudit))
	// Streams carry no route deadline — they are the designed way to
	// run long audits — and instead heartbeat (see stream.go) and die
	// with their client.
	s.mux.HandleFunc("GET /api/audit/stream", s.guard("audit_stream", classHeavy, 0, s.handleAuditStream))
	s.mux.HandleFunc("GET /api/audit/history", s.guard("audit_history", classRead, 0, s.handleAuditHistory))
	s.mux.HandleFunc("GET /api/panels", s.guard("panels", classRead, 0, s.handlePanels))
	s.mux.HandleFunc("GET /api/panels/{id}", s.guard("panel", classRead, 0, s.handlePanel))
	s.mux.HandleFunc("DELETE /api/panels/{id}", s.guard("panel_delete", classRead, 0, s.handlePanelDelete))
	return s
}

// Handler returns the root http.Handler.
func (s *Server) Handler() http.Handler { return s.mux }

// apiError is the JSON error envelope. RequestID carries the same ID
// as the X-Request-Id header (and the request's trace), so an error a
// client pastes into a report is correlatable with server logs.
// Coalesced followers replay the leader's bytes, which have no
// request ID of their own (see errBody).
type apiError struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the client sees a truncated
		// body and retries.
		return
	}
}

func writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), RequestID: requestID(r.Context())})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// datasetInfo describes a dataset for the configuration box.
type datasetInfo struct {
	Name       string     `json:"name"`
	Rows       int        `json:"rows"`
	Attributes []attrInfo `json:"attributes"`
}

type attrInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Role string `json:"role"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	var out []datasetInfo
	for _, name := range s.sess.DatasetNames() {
		d, err := s.sess.Dataset(name)
		if err != nil {
			writeErr(w, r, http.StatusInternalServerError, err)
			return
		}
		info := datasetInfo{Name: name, Rows: d.Len()}
		for i := 0; i < d.Schema().Len(); i++ {
			a := d.Schema().At(i)
			info.Attributes = append(info.Attributes, attrInfo{Name: a.Name, Kind: a.Kind.String(), Role: a.Role.String()})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// generateRequest asks for a synthetic marketplace population.
type generateRequest struct {
	Name   string `json:"name"`
	Preset string `json:"preset"`
	N      int    `json:"n"`
	Seed   uint64 `json:"seed"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req generateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	if req.N <= 0 {
		req.N = 1000
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	m, err := marketplace.PresetByName(req.Preset, req.N, req.Seed)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	name := req.Name
	if name == "" {
		name = m.Name
	}
	if err := s.sess.AddDataset(name, m.Workers); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	jobs := make([]string, 0, len(m.Jobs))
	for _, j := range m.Jobs {
		jobs = append(jobs, fmt.Sprintf("%s: %s", j.Name, j.Function))
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "rows": m.Workers.Len(), "jobs": jobs})
}

// anonymizeRequest asks for a k-anonymized copy of a dataset.
type anonymizeRequest struct {
	Dataset   string `json:"dataset"`
	Name      string `json:"name"`
	K         int    `json:"k"`
	Algorithm string `json:"algorithm"` // "mondrian" (default) or "datafly"
}

func (s *Server) handleAnonymize(w http.ResponseWriter, r *http.Request) {
	var req anonymizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	d, err := s.sess.Dataset(req.Dataset)
	if err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	if req.K < 2 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: k must be >= 2, got %d", req.K))
		return
	}
	quasi := d.Schema().Protected()
	if len(quasi) == 0 {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: dataset %q has no protected attributes", req.Dataset))
		return
	}
	var anon *dataset.Dataset
	switch req.Algorithm {
	case "", "mondrian":
		anon, err = anonymize.Mondrian(d, quasi, req.K)
	case "datafly":
		// Suppression-only hierarchies generated from the domains:
		// the zero-configuration Datafly an ARX user starts with.
		var hs []*anonymize.Hierarchy
		for _, q := range quasi {
			a, aerr := d.Schema().Attr(q)
			if aerr != nil {
				writeErr(w, r, http.StatusInternalServerError, aerr)
				return
			}
			if a.Kind != dataset.Categorical {
				continue
			}
			vals, verr := d.DistinctValues(q, nil)
			if verr != nil {
				writeErr(w, r, http.StatusInternalServerError, verr)
				return
			}
			h, herr := anonymize.SuppressionHierarchy(q, vals)
			if herr != nil {
				writeErr(w, r, http.StatusInternalServerError, herr)
				return
			}
			hs = append(hs, h)
		}
		if len(hs) == 0 {
			writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: no categorical protected attributes to generalize"))
			return
		}
		var res *anonymize.DataflyResult
		res, err = anonymize.Datafly(d, hs, req.K, d.Len()/20)
		if err == nil {
			anon = res.Data
		}
	default:
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: unknown algorithm %q", req.Algorithm))
		return
	}
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	name := req.Name
	if name == "" {
		name = fmt.Sprintf("%s-k%d", req.Dataset, req.K)
	}
	if err := s.sess.AddDataset(name, anon); err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": name, "rows": anon.Len()})
}

// panelSummary is the JSON form of a panel.
type panelSummary struct {
	ID         int       `json:"id"`
	Dataset    string    `json:"dataset"`
	Function   string    `json:"function"`
	Criterion  string    `json:"criterion"`
	Filter     string    `json:"filter,omitempty"`
	Population int       `json:"population"`
	Unfairness float64   `json:"unfairness"`
	Partitions int       `json:"partitions"`
	ElapsedMS  float64   `json:"elapsed_ms"`
	Tree       *treeNode `json:"tree,omitempty"`
	Text       string    `json:"text,omitempty"`
}

// treeNode is the JSON form of a partitioning tree node.
type treeNode struct {
	Label     string      `json:"label"`
	Size      int         `json:"size"`
	SplitAttr string      `json:"split_attr,omitempty"`
	MeanScore float64     `json:"mean_score"`
	Histogram []float64   `json:"histogram,omitempty"`
	Children  []*treeNode `json:"children,omitempty"`
}

func buildTree(p *core.Panel) *treeNode {
	if p.Result.Tree == nil {
		return nil
	}
	hists := make(map[partition.Key]histogram.Hist, len(p.Result.Groups))
	for i, g := range p.Result.Groups {
		hists[g.Key()] = p.Result.Hists[i]
	}
	var walk func(n *partition.Node) *treeNode
	walk = func(n *partition.Node) *treeNode {
		gs := report.StatsFor(n.Group, p.Scores)
		out := &treeNode{
			Label:     n.Group.Label(),
			Size:      n.Group.Size(),
			SplitAttr: n.SplitAttr,
			MeanScore: gs.Score.Mean,
		}
		if h, ok := hists[n.Group.Key()]; ok && n.IsLeaf() {
			out.Histogram = append([]float64(nil), h.Counts...)
		}
		for _, c := range n.Children {
			out.Children = append(out.Children, walk(c))
		}
		return out
	}
	return walk(p.Result.Tree.Root)
}

func toSummary(p *core.Panel, includeDetail bool) panelSummary {
	out := panelSummary{
		ID:         p.ID,
		Dataset:    p.Dataset,
		Function:   p.Function,
		Criterion:  p.Criterion,
		Filter:     p.Filter,
		Population: p.Population,
		Unfairness: p.Result.Unfairness,
		Partitions: len(p.Result.Groups),
		ElapsedMS:  float64(p.Result.Stats.Elapsed.Microseconds()) / 1000,
	}
	if includeDetail {
		out.Tree = buildTree(p)
		out.Text = report.RenderResult(p.Result, p.Scores, report.ResultOptions{Histograms: true, Pairwise: true})
	}
	return out
}

func (s *Server) handleQuantify(w http.ResponseWriter, r *http.Request) {
	var req core.PanelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	// Identical concurrent requests coalesce onto one solver run: the
	// leader quantifies (registering one panel), followers replay its
	// bytes — request-level single-flight on top of the memoized
	// engine cache.
	status, body, shared := s.flights.do(r.Context(), flightKey("quantify", req), func() (int, []byte) {
		if err := s.faults.HitContext(r.Context(), "server.quantify"); err != nil {
			return errBody(http.StatusInternalServerError, fmt.Errorf("server: %w", err))
		}
		p, err := s.sess.QuantifyContext(r.Context(), req)
		if err != nil {
			if st := s.ctxStatus(r, err); st != 0 {
				return errBody(st, err)
			}
			return errBody(requestErrStatus(err), err)
		}
		s.publishStats(p.Result.Stats)
		st, b, ok := mustJSON(toSummary(p, true))
		if !ok {
			return st, b
		}
		return http.StatusOK, b
	})
	if shared {
		s.m.coalesced.Inc()
		obsv.SpanFromContext(r.Context()).Set("coalesced", true)
	}
	if body == nil {
		writeErr(w, r, status, fmt.Errorf("server: request abandoned while waiting for an identical in-flight request"))
		return
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds(s.limits.RetryAfter))
	}
	respond(w, status, body)
}

// requestErrStatus maps a panel-resolution error to its HTTP status:
// a missing dataset is the caller naming a resource that does not
// exist (404), everything else is a bad request.
func requestErrStatus(err error) int {
	if strings.Contains(err.Error(), "unknown dataset") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// mitigateRequest configures one quantify → mitigate → re-quantify
// run: a panel request (which partitioning search to repair) plus the
// mitigation knobs.
type mitigateRequest struct {
	core.PanelRequest
	// Strategy is "fair" (default), "fair-legacy", "detgreedy",
	// "detcons" or "exposure".
	Strategy string
	// K is the top-k prefix the constraints apply to (0 = min(10, n)).
	K int
	// Alpha is the FA*IR family-wise significance level (default
	// 0.1), split across groups and exactly adjusted per group
	// (Bonferroni-divided under "fair-legacy").
	Alpha float64
	// MinExposureRatio is the exposure strategy's floor (default 0.95).
	MinExposureRatio float64
	// Seed drives exposure-lp's ranking draw (0 = 1). Deterministic
	// strategies ignore it.
	Seed uint64
	// Targets maps group labels to target proportions (empty derives
	// population shares).
	Targets map[string]float64
}

// metricsJSON is the JSON form of one side of the before/after
// comparison.
type metricsJSON struct {
	Unfairness    float64         `json:"unfairness"`
	ParityGap     float64         `json:"parity_gap"`
	ExposureRatio float64         `json:"exposure_ratio"`
	Groups        []groupStatJSON `json:"groups"`
}

type groupStatJSON struct {
	Label         string  `json:"label"`
	Size          int     `json:"size"`
	TopKCount     int     `json:"top_k_count"`
	SelectionRate float64 `json:"selection_rate"`
	Exposure      float64 `json:"exposure"`
}

func toMetricsJSON(m mitigate.Metrics, labels []string) metricsJSON {
	out := metricsJSON{
		Unfairness:    m.Unfairness,
		ParityGap:     m.ParityGap,
		ExposureRatio: m.ExposureRatio,
		Groups:        make([]groupStatJSON, len(m.Stats)),
	}
	for i, gs := range m.Stats {
		out.Groups[i] = groupStatJSON{
			Label:         labels[i],
			Size:          gs.Size,
			TopKCount:     gs.TopKCount,
			SelectionRate: gs.SelectionRate,
			Exposure:      gs.Exposure,
		}
	}
	return out
}

// mitigateResponse is the JSON answer of POST /api/mitigate: the
// before/after comparison plus the panel registered for the mitigated
// ranking's re-quantification.
type mitigateResponse struct {
	Strategy string       `json:"strategy"`
	K        int          `json:"k"`
	Targets  []float64    `json:"targets"`
	Before   metricsJSON  `json:"before"`
	After    metricsJSON  `json:"after"`
	Utility  utilityJSON  `json:"utility"`
	Text     string       `json:"text"`
	Panel    panelSummary `json:"panel"`
	// Distribution is set only by stochastic strategies (exposure-lp):
	// the mixture the sampled ranking was drawn from, so clients can
	// report the in-expectation guarantee next to the realization.
	Distribution *distributionJSON `json:"distribution,omitempty"`
}

// distributionJSON is the JSON form of a stochastic strategy's ranking
// distribution.
type distributionJSON struct {
	Support          int       `json:"support"`
	Seed             uint64    `json:"seed"`
	Sampled          int       `json:"sampled"`
	Weights          []float64 `json:"weights"`
	ExpectedExposure []float64 `json:"expected_exposure"`
	ExpectedRatio    float64   `json:"expected_ratio"`
}

func toDistributionJSON(d *mitigate.Distribution) *distributionJSON {
	if d == nil {
		return nil
	}
	return &distributionJSON{
		Support:          len(d.Rankings),
		Seed:             d.Seed,
		Sampled:          d.Sampled,
		Weights:          d.Weights,
		ExpectedExposure: d.ExpectedExposure,
		ExpectedRatio:    d.ExpectedRatio,
	}
}

// utilityJSON is the JSON form of a mitigation's ranking-quality cost.
type utilityJSON struct {
	NDCG             float64 `json:"ndcg"`
	MeanDisplacement float64 `json:"mean_displacement"`
}

func (s *Server) handleMitigate(w http.ResponseWriter, r *http.Request) {
	var req mitigateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	if req.Exhaustive {
		// The harness discovers the partitioning with the greedy
		// engine; silently repairing a different partitioning than the
		// exact one asked for would be worse than refusing.
		writeErr(w, r, http.StatusBadRequest, fmt.Errorf("server: mitigation does not support the exhaustive solver"))
		return
	}
	if err := s.faults.HitContext(r.Context(), "server.mitigate"); err != nil {
		writeErr(w, r, http.StatusInternalServerError, fmt.Errorf("server: %w", err))
		return
	}
	rp, err := s.sess.Resolve(req.PanelRequest)
	if err != nil {
		writeErr(w, r, requestErrStatus(err), err)
		return
	}
	o, err := mitigate.EvaluateContext(r.Context(), rp.Data, rp.Scores, rp.Config, mitigate.Options{
		Strategy:         req.Strategy,
		K:                req.K,
		Targets:          req.Targets,
		Alpha:            req.Alpha,
		MinExposureRatio: req.MinExposureRatio,
		Seed:             req.Seed,
	})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, mitigate.ErrInfeasible) {
			status = http.StatusUnprocessableEntity
		}
		if st := s.ctxStatus(r, err); st != 0 {
			status = st
			w.Header().Set("Retry-After", retryAfterSeconds(s.limits.RetryAfter))
		}
		writeErr(w, r, status, err)
		return
	}
	s.publishStats(o.BeforeResult.Stats)
	s.publishStats(o.AfterResult.Stats)
	text, err := report.MitigationTable(o)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, err)
		return
	}
	// Publish the mitigated ranking's re-quantification as a regular
	// panel, so it sits side by side with the exploration panels that
	// led to it.
	mrp := *rp
	mrp.Function = fmt.Sprintf("%s [mitigated:%s]", rp.Function, o.Strategy)
	mrp.Scores = o.Scores
	p := s.sess.AddPanel(req.Dataset, &mrp, o.AfterResult)
	writeJSON(w, http.StatusOK, mitigateResponse{
		Strategy:     o.Strategy,
		K:            o.K,
		Targets:      o.Targets,
		Before:       toMetricsJSON(o.Before, o.GroupLabels),
		After:        toMetricsJSON(o.After, o.GroupLabels),
		Utility:      utilityJSON{NDCG: o.Utility.NDCG, MeanDisplacement: o.Utility.MeanDisplacement},
		Text:         text,
		Panel:        toSummary(p, true),
		Distribution: toDistributionJSON(o.Distribution),
	})
}

func (s *Server) handlePanels(w http.ResponseWriter, r *http.Request) {
	panels := s.sess.Panels()
	out := make([]panelSummary, 0, len(panels))
	for _, p := range panels {
		out = append(out, toSummary(p, false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) panelID(r *http.Request) (int, error) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return 0, fmt.Errorf("server: bad panel id %q", r.PathValue("id"))
	}
	return id, nil
}

func (s *Server) handlePanel(w http.ResponseWriter, r *http.Request) {
	id, err := s.panelID(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	p, err := s.sess.Panel(id)
	if err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, toSummary(p, true))
}

func (s *Server) handlePanelDelete(w http.ResponseWriter, r *http.Request) {
	id, err := s.panelID(r)
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	if err := s.sess.RemovePanel(id); err != nil {
		writeErr(w, r, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": id})
}
