package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	sess := core.NewSession()
	if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sess).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	res, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return res
}

func TestIndexServed(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK || !strings.Contains(buf.String(), "FaiRank") {
		t.Errorf("index: %d, %q...", res.StatusCode, buf.String()[:40])
	}
	// Unknown paths 404.
	res2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status: %d", res2.StatusCode)
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	ts := testServer(t)
	var infos []datasetInfo
	res := getJSON(t, ts.URL+"/api/datasets", &infos)
	if res.StatusCode != http.StatusOK || len(infos) != 1 {
		t.Fatalf("datasets: %d, %v", res.StatusCode, infos)
	}
	if infos[0].Name != "table1" || infos[0].Rows != 10 || len(infos[0].Attributes) != 8 {
		t.Errorf("dataset info: %+v", infos[0])
	}
}

func TestQuantifyEndpoint(t *testing.T) {
	ts := testServer(t)
	var p panelSummary
	res := postJSON(t, ts.URL+"/api/quantify", core.PanelRequest{
		Dataset:  "table1",
		Function: "0.3*language_test + 0.7*rating",
	}, &p)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("quantify status: %d (%+v)", res.StatusCode, p)
	}
	if p.ID != 1 || p.Partitions == 0 || p.Tree == nil || p.Text == "" {
		t.Errorf("panel: %+v", p)
	}
	if p.Tree.SplitAttr != "ethnicity" {
		t.Errorf("tree root split: %q", p.Tree.SplitAttr)
	}
	// Panel listing.
	var panels []panelSummary
	getJSON(t, ts.URL+"/api/panels", &panels)
	if len(panels) != 1 || panels[0].Tree != nil {
		t.Errorf("panels list: %+v", panels)
	}
	// Detail view.
	var detail panelSummary
	res = getJSON(t, ts.URL+"/api/panels/1", &detail)
	if res.StatusCode != http.StatusOK || detail.Tree == nil {
		t.Errorf("panel detail: %d %+v", res.StatusCode, detail)
	}
	// Delete.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/panels/1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusOK {
		t.Errorf("delete status: %d", dres.StatusCode)
	}
	getJSON(t, ts.URL+"/api/panels", &panels)
	if len(panels) != 0 {
		t.Errorf("panels after delete: %+v", panels)
	}
}

func TestQuantifyErrors(t *testing.T) {
	ts := testServer(t)
	var e apiError
	res := postJSON(t, ts.URL+"/api/quantify", core.PanelRequest{Dataset: "nope", Function: "rating"}, &e)
	if res.StatusCode != http.StatusNotFound || e.Error == "" {
		t.Errorf("unknown dataset: %d %+v", res.StatusCode, e)
	}
	res = postJSON(t, ts.URL+"/api/quantify", core.PanelRequest{Dataset: "table1"}, &e)
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("missing function: %d", res.StatusCode)
	}
	// Malformed JSON body.
	raw, err := http.Post(ts.URL+"/api/quantify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", raw.StatusCode)
	}
}

func TestGenerateEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	res := postJSON(t, ts.URL+"/api/datasets/generate", generateRequest{Preset: "taskrabbit", N: 200, Seed: 3}, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("generate: %d %v", res.StatusCode, out)
	}
	if out["name"] != "taskrabbit-like" || out["rows"].(float64) != 200 {
		t.Errorf("generate out: %v", out)
	}
	var infos []datasetInfo
	getJSON(t, ts.URL+"/api/datasets", &infos)
	if len(infos) != 2 {
		t.Errorf("datasets after generate: %v", infos)
	}
	// Defaults kick in for empty request.
	res = postJSON(t, ts.URL+"/api/datasets/generate", generateRequest{}, &out)
	if res.StatusCode != http.StatusOK {
		t.Errorf("default generate: %d", res.StatusCode)
	}
	// Unknown preset errors.
	var e apiError
	res = postJSON(t, ts.URL+"/api/datasets/generate", generateRequest{Preset: "nope"}, &e)
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad preset: %d", res.StatusCode)
	}
}

func TestAnonymizeEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	res := postJSON(t, ts.URL+"/api/datasets/anonymize", anonymizeRequest{Dataset: "table1", K: 2}, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("anonymize: %d %v", res.StatusCode, out)
	}
	if out["name"] != "table1-k2" {
		t.Errorf("anonymize name: %v", out["name"])
	}
	// The anonymized dataset can be quantified.
	var p panelSummary
	res = postJSON(t, ts.URL+"/api/quantify", core.PanelRequest{
		Dataset:  "table1-k2",
		Function: "0.3*language_test + 0.7*rating",
	}, &p)
	if res.StatusCode != http.StatusOK {
		t.Errorf("quantify anonymized: %d", res.StatusCode)
	}
	// Datafly variant.
	res = postJSON(t, ts.URL+"/api/datasets/anonymize", anonymizeRequest{Dataset: "table1", K: 2, Algorithm: "datafly", Name: "t1-df"}, &out)
	if res.StatusCode != http.StatusOK {
		t.Errorf("datafly anonymize: %d %v", res.StatusCode, out)
	}
	// Errors.
	var e apiError
	res = postJSON(t, ts.URL+"/api/datasets/anonymize", anonymizeRequest{Dataset: "nope", K: 2}, &e)
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: %d", res.StatusCode)
	}
	res = postJSON(t, ts.URL+"/api/datasets/anonymize", anonymizeRequest{Dataset: "table1", K: 1}, &e)
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("k=1: %d", res.StatusCode)
	}
	res = postJSON(t, ts.URL+"/api/datasets/anonymize", anonymizeRequest{Dataset: "table1", K: 2, Algorithm: "zz"}, &e)
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad algorithm: %d", res.StatusCode)
	}
}

func TestPanelIDValidation(t *testing.T) {
	ts := testServer(t)
	res, err := http.Get(ts.URL + "/api/panels/abc")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id: %d", res.StatusCode)
	}
	res, err = http.Get(ts.URL + "/api/panels/99")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("missing panel: %d", res.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/api/panels/99", nil)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusNotFound {
		t.Errorf("delete missing: %d", dres.StatusCode)
	}
}

func TestConcurrentQuantify(t *testing.T) {
	ts := testServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			buf, _ := json.Marshal(core.PanelRequest{Dataset: "table1", Function: "rating"})
			res, err := http.Post(ts.URL+"/api/quantify", "application/json", bytes.NewReader(buf))
			if err == nil {
				res.Body.Close()
				if res.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", res.StatusCode)
				}
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var panels []panelSummary
	getJSON(t, ts.URL+"/api/panels", &panels)
	if len(panels) != 8 {
		t.Errorf("concurrent panels: %d", len(panels))
	}
	ids := map[int]bool{}
	for _, p := range panels {
		if ids[p.ID] {
			t.Errorf("duplicate panel id %d", p.ID)
		}
		ids[p.ID] = true
	}
}

func TestMitigateEndpoint(t *testing.T) {
	ts := testServer(t)
	var out mitigateResponse
	res := postJSON(t, ts.URL+"/api/mitigate", map[string]any{
		"Dataset":  "table1",
		"Function": "0.3*language_test + 0.7*rating",
		"Strategy": "detcons",
		"K":        5,
	}, &out)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("mitigate status: %d (%+v)", res.StatusCode, out)
	}
	if out.Strategy != "detcons" || out.K != 5 || out.Text == "" {
		t.Errorf("response: %+v", out)
	}
	if len(out.Before.Groups) == 0 || len(out.Before.Groups) != len(out.After.Groups) {
		t.Errorf("metrics groups: %d before, %d after", len(out.Before.Groups), len(out.After.Groups))
	}
	if !strings.Contains(out.Panel.Function, "[mitigated:detcons]") {
		t.Errorf("panel function: %q", out.Panel.Function)
	}
	// The mitigated re-quantification joins the panel list.
	var panels []panelSummary
	getJSON(t, ts.URL+"/api/panels", &panels)
	if len(panels) != 1 || panels[0].ID != out.Panel.ID {
		t.Errorf("panels: %+v", panels)
	}
}

func TestMitigateEndpointErrors(t *testing.T) {
	ts := testServer(t)
	post := func(body map[string]any) int {
		var out map[string]any
		res := postJSON(t, ts.URL+"/api/mitigate", body, &out)
		return res.StatusCode
	}
	fn := "0.3*language_test + 0.7*rating"
	if got := post(map[string]any{"Dataset": "nope", "Function": fn}); got != http.StatusNotFound {
		t.Errorf("unknown dataset: %d", got)
	}
	if got := post(map[string]any{"Dataset": "table1", "Function": fn, "Exhaustive": true}); got != http.StatusBadRequest {
		t.Errorf("exhaustive: %d", got)
	}
	if got := post(map[string]any{"Dataset": "table1", "Function": fn, "Objective": "least"}); got != http.StatusBadRequest {
		t.Errorf("least objective: %d", got)
	}
	if got := post(map[string]any{"Dataset": "table1", "Function": fn, "Strategy": "bogus"}); got != http.StatusBadRequest {
		t.Errorf("unknown strategy: %d", got)
	}
	if got := post(map[string]any{"Dataset": "table1", "Function": fn, "Attributes": []string{"gender"},
		"Strategy": "detgreedy", "K": 10,
		"Targets": map[string]float64{"gender=Female": 0.9, "gender=Male": 0.1},
	}); got != http.StatusUnprocessableEntity {
		t.Errorf("infeasible targets: %d", got)
	}
}
