package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/auditstore"
	"repro/internal/report"
)

// GET /api/audit/stream runs a batch audit and streams it as
// server-sent events instead of one monolithic response: one `job`
// event per audited job — emitted in canonical input order the moment
// the emit frontier reaches it, so the first findings render while
// the rest of the marketplace is still being audited — then a single
// `rollup` event with the marketplace-level aggregates, or an `error`
// event if the run fails mid-stream. The event sequence is
// bit-identical for every worker count (enforced by golden tests),
// exactly like the blocking endpoint's response.
//
// The endpoint accepts the POST /api/audit parameters as query
// parameters (EventSource can only GET): preset, n, seed OR dataset
// plus repeated job=name=function; strategy, k, top_n, workers,
// targets=label=share,..., alpha, min_ratio; aggregator, distance,
// bins, attrs, min_group_size, max_depth, solver_workers.
func (s *Server) handleAuditStream(w http.ResponseWriter, r *http.Request) {
	req, err := auditRequestFromQuery(r.URL.Query())
	if err != nil {
		writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	ra, status, err := s.resolveAudit(req)
	if err != nil {
		writeErr(w, r, status, err)
		return
	}
	prev := s.loadBaseline(ra)
	if prev != nil {
		ra.opts.Baseline = prev.Baseline(ra.datasetID)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, r, http.StatusInternalServerError, fmt.Errorf("server: response writer cannot stream"))
		return
	}
	if err := s.faults.HitContext(r.Context(), "server.stream"); err != nil {
		writeErr(w, r, http.StatusInternalServerError, fmt.Errorf("server: %w", err))
		return
	}
	// Long audits legitimately outlive the http.Server WriteTimeout;
	// SSE is the one route exempted from it. Writers that cannot
	// adjust deadlines (e.g. test recorders) are left as they are.
	_ = http.NewResponseController(w).SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// One mutex serializes event writes and heartbeats: Emit fires
	// from audit workers, the heartbeat from its own ticker goroutine.
	var wmu sync.Mutex
	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		wmu.Lock()
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
		wmu.Unlock()
	}
	// Periodic comment heartbeats keep idle proxies and LBs from
	// killing the connection while a big marketplace quantifies
	// between job events. Comments are invisible to EventSource.
	if hb := s.limits.StreamHeartbeat; hb > 0 {
		stop := make(chan struct{})
		hbDone := make(chan struct{})
		go func() {
			defer close(hbDone)
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					wmu.Lock()
					fmt.Fprint(w, ": hb\n\n")
					flusher.Flush()
					wmu.Unlock()
				case <-stop:
					return
				}
			}
		}()
		// The handler must not return while the heartbeat goroutine
		// can still touch w.
		defer func() { close(stop); <-hbDone }()
	}

	ra.opts.Emit = func(i int, jr audit.JobReport) {
		emit("job", toStreamJobJSON(i, jr))
	}

	// A closed EventSource must not keep the marketplace audit
	// burning: the request context (cut short by client disconnect or
	// server drain — see guard) reaches into in-flight jobs at
	// worker-pool granularity and frees the pool.
	rep, err := audit.RunRankingsContext(r.Context(), ra.data, ra.rankings, ra.cfg, ra.opts)
	if err != nil {
		if errors.Is(err, audit.ErrCanceled) {
			// The client is gone (or the server is draining); nobody
			// is listening. Persist the completed prefix as a
			// resumable snapshot so the work already paid for feeds
			// the next run's baseline.
			if s.store != nil && rep != nil && len(rep.Jobs) > 0 {
				rep.Marketplace = ra.name
				if snap, serr := auditstore.New(ra.datasetID, ra.cfg, ra.opts, ra.rankings, rep); serr == nil {
					snap.Partial = true
					s.store.Save(snap)
				}
			}
			return
		}
		// Headers are long gone; the stream's error channel is an SSE
		// event of its own.
		emit("error", apiError{Error: err.Error()})
		return
	}
	rep.Marketplace = ra.name

	rollup := toStreamRollupJSON(rep)
	if s.store != nil {
		if snap, serr := auditstore.New(ra.datasetID, ra.cfg, ra.opts, ra.rankings, rep); serr == nil {
			if _, serr := s.store.Save(snap); serr == nil {
				rollup.SnapshotID = snap.ID
				rollup.SnapshotSeq = snap.Seq
			} else {
				rollup.Warning = fmt.Sprintf("snapshot not persisted: %v", serr)
			}
		}
	}
	emit("rollup", rollup)
}

// auditStreamJobJSON is one `job` SSE event: the job's audit row plus
// its canonical index, so clients can render a stable table without
// trusting arrival order.
type auditStreamJobJSON struct {
	Index int `json:"index"`
	auditJobJSON
}

func toStreamJobJSON(i int, jr audit.JobReport) auditStreamJobJSON {
	return auditStreamJobJSON{
		Index: i,
		auditJobJSON: auditJobJSON{
			Job:              jr.Job,
			Function:         jr.Function,
			Groups:           jr.Groups,
			Attributes:       jr.Attributes,
			Before:           toMetricsJSON(jr.Before, jr.Groups),
			After:            toMetricsJSON(jr.After, jr.Groups),
			UnfairnessBefore: jr.QuantifiedBefore,
			UnfairnessAfter:  jr.QuantifiedAfter,
			NDCG:             jr.Utility.NDCG,
			MeanDisplacement: jr.Utility.MeanDisplacement,
			Improved:         jr.Improved(),
			Infeasible:       jr.Infeasible,
			Detail:           jr.Detail,
		},
	}
}

// auditStreamRollupJSON is the final `rollup` SSE event: the
// marketplace-level aggregates of the audit whose jobs were already
// streamed (JobCount, not the rows themselves), plus the rendered
// text report and snapshot lineage when persistence is on.
type auditStreamRollupJSON struct {
	Marketplace          string        `json:"marketplace"`
	Strategy             string        `json:"strategy"`
	K                    int           `json:"k"`
	JobCount             int           `json:"job_count"`
	Worst                []string      `json:"worst"`
	Hotspots             []hotspotJSON `json:"hotspots"`
	Infeasible           int           `json:"infeasible"`
	MeanUnfairnessBefore float64       `json:"mean_unfairness_before"`
	MeanUnfairnessAfter  float64       `json:"mean_unfairness_after"`
	MeanParityGapBefore  float64       `json:"mean_parity_gap_before"`
	MeanParityGapAfter   float64       `json:"mean_parity_gap_after"`
	MeanNDCG             float64       `json:"mean_ndcg"`
	MeanDisplacement     float64       `json:"mean_displacement"`
	ElapsedMS            float64       `json:"elapsed_ms"`
	Text                 string        `json:"text"`
	SnapshotID           string        `json:"snapshot_id,omitempty"`
	SnapshotSeq          int           `json:"snapshot_seq,omitempty"`
	Reused               int           `json:"reused,omitempty"`
	Warning              string        `json:"warning,omitempty"`
}

func toStreamRollupJSON(rep *audit.Report) auditStreamRollupJSON {
	out := auditStreamRollupJSON{
		Marketplace:          rep.Marketplace,
		Strategy:             rep.Strategy,
		K:                    rep.K,
		JobCount:             len(rep.Jobs),
		Worst:                rep.Worst,
		Hotspots:             make([]hotspotJSON, len(rep.Hotspots)),
		Infeasible:           rep.Infeasible,
		MeanUnfairnessBefore: rep.MeanUnfairnessBefore,
		MeanUnfairnessAfter:  rep.MeanUnfairnessAfter,
		MeanParityGapBefore:  rep.MeanParityGapBefore,
		MeanParityGapAfter:   rep.MeanParityGapAfter,
		MeanNDCG:             rep.MeanNDCG,
		MeanDisplacement:     rep.MeanDisplacement,
		ElapsedMS:            float64(rep.Elapsed.Microseconds()) / 1000,
		Reused:               rep.Reused,
	}
	for i, h := range rep.Hotspots {
		out.Hotspots[i] = hotspotJSON{Attribute: h.Attribute, Jobs: h.Jobs}
	}
	if text, err := report.AuditTable(rep); err == nil {
		out.Text = text
	}
	return out
}

// auditRequestFromQuery maps the stream endpoint's query parameters
// onto the shared auditRequest.
func auditRequestFromQuery(q url.Values) (auditRequest, error) {
	var req auditRequest
	var err error
	intParam := func(name string) int {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		n, perr := strconv.Atoi(v)
		if perr != nil && err == nil {
			err = fmt.Errorf("server: parameter %s=%q is not an integer", name, v)
		}
		return n
	}
	floatParam := func(name string) float64 {
		v := q.Get(name)
		if v == "" {
			return 0
		}
		f, perr := strconv.ParseFloat(v, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("server: parameter %s=%q is not a number", name, v)
		}
		return f
	}

	req.Preset = q.Get("preset")
	req.N = intParam("n")
	if v := q.Get("seed"); v != "" {
		seed, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("server: parameter seed=%q is not an unsigned integer", v)
		}
		req.Seed = seed
	}
	req.Dataset = q.Get("dataset")
	for _, j := range q["job"] {
		name, fn, ok := strings.Cut(j, "=")
		if !ok && err == nil {
			err = fmt.Errorf("server: parameter job=%q is not name=function", j)
		}
		req.Jobs = append(req.Jobs, auditJobSpec{Name: name, Function: fn})
	}
	req.Strategy = q.Get("strategy")
	req.K = intParam("k")
	req.TopN = intParam("top_n")
	req.Workers = intParam("workers")
	req.Alpha = floatParam("alpha")
	req.MinExposureRatio = floatParam("min_ratio")
	if v := q.Get("mitigate_seed"); v != "" {
		seed, perr := strconv.ParseUint(v, 10, 64)
		if perr != nil && err == nil {
			err = fmt.Errorf("server: parameter mitigate_seed=%q is not an unsigned integer", v)
		}
		req.MitigateSeed = seed
	}
	if v := q.Get("targets"); v != "" {
		req.Targets = make(map[string]float64)
		for _, t := range strings.Split(v, ",") {
			label, share, ok := strings.Cut(t, "=")
			if !ok {
				if err == nil {
					err = fmt.Errorf("server: parameter targets entry %q is not label=share", t)
				}
				continue
			}
			f, perr := strconv.ParseFloat(share, 64)
			if perr != nil && err == nil {
				err = fmt.Errorf("server: target share %q is not a number", share)
			}
			req.Targets[label] = f
		}
	}
	req.Aggregator = q.Get("aggregator")
	req.Distance = q.Get("distance")
	req.Bins = intParam("bins")
	if v := q.Get("attrs"); v != "" {
		for _, a := range strings.Split(v, ",") {
			if a = strings.TrimSpace(a); a != "" {
				req.Attributes = append(req.Attributes, a)
			}
		}
	}
	req.MinGroupSize = intParam("min_group_size")
	req.MaxDepth = intParam("max_depth")
	req.SolverWorkers = intParam("solver_workers")
	return req, err
}
