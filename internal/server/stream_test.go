package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// goldenStreamQuery is the canonical streaming-audit request the
// suite pins: the same small crowdsourcing audit as the blocking
// golden, served as one SSE event per job plus a rollup.
func goldenStreamQuery(workers int) url.Values {
	return url.Values{
		"preset":   {"crowdsourcing"},
		"n":        {"300"},
		"seed":     {"1"},
		"strategy": {"detcons"},
		"k":        {"10"},
		"workers":  {fmt.Sprintf("%d", workers)},
	}
}

// canonicalSSE parses an SSE stream, scrubs the nondeterministic
// rollup fields (elapsed, cache-warmth work counters in the text
// report), and re-renders every event with stable JSON indentation.
func canonicalSSE(t *testing.T, body []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, block := range strings.Split(strings.TrimSuffix(string(body), "\n\n"), "\n\n") {
		event, data, ok := strings.Cut(block, "\n")
		if !ok {
			t.Fatalf("malformed SSE block %q", block)
		}
		if !strings.HasPrefix(event, "event: ") || !strings.HasPrefix(data, "data: ") {
			t.Fatalf("malformed SSE block %q", block)
		}
		var v any
		if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &v); err != nil {
			t.Fatalf("SSE data is not JSON: %v\n%s", err, data)
		}
		scrubTiming(v)
		canon, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&out, "%s\n%s\n\n", event, canon)
	}
	return out.Bytes()
}

func getStream(t *testing.T, ts *httptest.Server, q url.Values) []byte {
	t.Helper()
	res, err := http.Get(ts.URL + "/api/audit/stream?" + q.Encode())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(res.Body)
		t.Fatalf("status %d: %s", res.StatusCode, body)
	}
	if ct := res.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// The streamed audit is pinned as a golden file: one `job` event per
// job in canonical order, then one `rollup` event. The golden is
// recorded at workers=8, so the parallel stream must serve the exact
// bytes the sequential engine would.
func TestGoldenAuditStream(t *testing.T) {
	ts := testServer(t)
	body := getStream(t, ts, goldenStreamQuery(8))
	checkGolden(t, "audit_stream.golden.txt", canonicalSSE(t, body))
}

// Every worker count streams the identical event sequence — order,
// payloads, rollup — because emission follows the canonical frontier,
// not completion order.
func TestGoldenAuditStreamWorkerInvariance(t *testing.T) {
	var want []byte
	for _, workers := range []int{1, 2, 8} {
		sess := core.NewSession()
		ts := httptest.NewServer(New(sess).Handler())
		body := canonicalSSE(t, getStream(t, ts, goldenStreamQuery(workers)))
		ts.Close()
		if want == nil {
			want = body
			continue
		}
		if !bytes.Equal(body, want) {
			t.Errorf("workers=%d stream differs:\n%s\nwant:\n%s", workers, body, want)
		}
	}
}

// The stream carries the whole report: its job events must agree with
// the blocking endpoint's rows, and the rollup with its aggregates.
func TestAuditStreamMatchesBlocking(t *testing.T) {
	ts := testServer(t)

	events := strings.Split(strings.TrimSpace(string(getStream(t, ts, goldenStreamQuery(4)))), "\n\n")
	var jobs []map[string]any
	var rollup map[string]any
	for _, block := range events {
		event, data, _ := strings.Cut(block, "\n")
		payload := strings.TrimPrefix(data, "data: ")
		switch strings.TrimPrefix(event, "event: ") {
		case "job":
			var j map[string]any
			if err := json.Unmarshal([]byte(payload), &j); err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, j)
		case "rollup":
			if rollup != nil {
				t.Fatal("more than one rollup event")
			}
			if err := json.Unmarshal([]byte(payload), &rollup); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected event %q", event)
		}
	}
	if rollup == nil {
		t.Fatal("stream ended without a rollup event")
	}

	buf, err := json.Marshal(goldenAuditRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(ts.URL+"/api/audit", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var blocking struct {
		Jobs                []map[string]any `json:"jobs"`
		K                   float64          `json:"k"`
		MeanUnfairnessAfter float64          `json:"mean_unfairness_after"`
	}
	if err := json.NewDecoder(res.Body).Decode(&blocking); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(blocking.Jobs) {
		t.Fatalf("streamed %d jobs, blocking endpoint has %d", len(jobs), len(blocking.Jobs))
	}
	for i, j := range jobs {
		if j["index"].(float64) != float64(i) {
			t.Errorf("event %d carries index %v", i, j["index"])
		}
		if j["job"] != blocking.Jobs[i]["job"] {
			t.Errorf("event %d is job %v, blocking row is %v", i, j["job"], blocking.Jobs[i]["job"])
		}
		if j["unfairness_after"] != blocking.Jobs[i]["unfairness_after"] {
			t.Errorf("job %v: streamed unfairness %v != blocking %v",
				j["job"], j["unfairness_after"], blocking.Jobs[i]["unfairness_after"])
		}
	}
	if rollup["job_count"].(float64) != float64(len(jobs)) {
		t.Errorf("rollup job_count %v, want %d", rollup["job_count"], len(jobs))
	}
	if rollup["mean_unfairness_after"] != blocking.MeanUnfairnessAfter {
		t.Errorf("rollup mean %v != blocking %v", rollup["mean_unfairness_after"], blocking.MeanUnfairnessAfter)
	}
}

// A bad stream request fails before any event is written: a plain
// JSON error with a proper status code, not a broken stream.
func TestAuditStreamBadRequest(t *testing.T) {
	ts := testServer(t)
	for _, q := range []url.Values{
		{"preset": {"nope"}},
		{"preset": {"crowdsourcing"}, "n": {"ten"}},
		{"preset": {"crowdsourcing"}, "strategy": {"nope"}},
		{"dataset": {"table1"}}, // no jobs
		{"job": {"a=rating"}},   // no dataset or preset
		{"preset": {"crowdsourcing"}, "targets": {"oops"}},
	} {
		res, err := http.Get(ts.URL + "/api/audit/stream?" + q.Encode())
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode == http.StatusOK {
			t.Errorf("query %v unexpectedly streamed: %s", q, body)
			continue
		}
		var apiErr apiError
		if err := json.Unmarshal(body, &apiErr); err != nil || apiErr.Error == "" {
			t.Errorf("query %v: error body %q is not an apiError", q, body)
		}
	}
}

// Dataset-plus-jobs audits stream too, sharing the session cache.
func TestAuditStreamDatasetJobs(t *testing.T) {
	sess := core.NewSession()
	if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(sess).Handler())
	defer ts.Close()
	q := url.Values{
		"dataset":  {"table1"},
		"job":      {"lang=language_test", "blend=0.3*language_test + 0.7*rating"},
		"strategy": {"fair"},
	}
	events := strings.Split(strings.TrimSpace(string(getStream(t, ts, q))), "\n\n")
	var jobNames []string
	for _, block := range events {
		event, data, _ := strings.Cut(block, "\n")
		if strings.TrimPrefix(event, "event: ") != "job" {
			continue
		}
		var j struct {
			Job string `json:"job"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &j); err != nil {
			t.Fatal(err)
		}
		jobNames = append(jobNames, j.Job)
	}
	if want := []string{"lang", "blend"}; !equalStrings(jobNames, want) {
		t.Errorf("streamed jobs %v, want %v", jobNames, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
