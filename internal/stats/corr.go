package stats

import (
	"fmt"
	"math"
	"sort"
)

// Pearson returns the Pearson correlation coefficient between xs and
// ys. It returns an error if the lengths differ or are below 2, and 0
// if either series has zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Pearson length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: Pearson needs at least 2 points, got %d", len(xs))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// AverageRanks returns the 1-based average ranks of xs, where the
// largest value gets rank 1 ("best first", the convention used for
// rankings of job candidates). Tied values share the mean of the ranks
// they span, which is the standard treatment used by Spearman
// correlation and by FaiRank's rank-only transparency mode.
func AverageRanks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Positions i..j (0-based) are tied; average of 1-based ranks.
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Spearman returns the Spearman rank correlation between xs and ys
// (Pearson correlation of their average ranks).
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: Spearman length mismatch %d vs %d", len(xs), len(ys))
	}
	return Pearson(AverageRanks(xs), AverageRanks(ys))
}

// KolmogorovSmirnov returns the two-sample Kolmogorov–Smirnov statistic
// (the maximum vertical distance between the empirical CDFs of xs and
// ys). It returns an error if either sample is empty.
func KolmogorovSmirnov(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, fmt.Errorf("stats: KolmogorovSmirnov requires non-empty samples (%d, %d)", len(xs), len(ys))
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		v := math.Min(a[i], b[j])
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}
