package stats

import (
	"math"
	"testing"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect correlation: got %g", r)
	}
	neg := []float64{8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect anti-correlation: got %g", r)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("zero-variance series should give 0, got %g", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Error("n<2 should error")
	}
}

func TestAverageRanksBestFirst(t *testing.T) {
	ranks := AverageRanks([]float64{0.1, 0.9, 0.5})
	// 0.9 is best (rank 1), 0.5 rank 2, 0.1 rank 3.
	want := []float64{3, 1, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("AverageRanks = %v, want %v", ranks, want)
		}
	}
}

func TestAverageRanksTies(t *testing.T) {
	ranks := AverageRanks([]float64{0.5, 0.5, 0.9, 0.1})
	// 0.9 rank 1; the two 0.5s tie for ranks 2,3 -> 2.5; 0.1 rank 4.
	want := []float64{2.5, 2.5, 1, 4}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("tied AverageRanks = %v, want %v", ranks, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // monotone but nonlinear
	r, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1) > 1e-12 {
		t.Errorf("monotone Spearman: got %g, want 1", r)
	}
}

func TestKolmogorovSmirnov(t *testing.T) {
	// Identical samples -> 0.
	d, err := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical KS: got %g", d)
	}
	// Fully separated samples -> 1.
	d, err = KolmogorovSmirnov([]float64{1, 2}, []float64{10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("separated KS: got %g, want 1", d)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1}); err == nil {
		t.Error("empty sample should error")
	}
}

func TestKolmogorovSmirnovSymmetry(t *testing.T) {
	g := NewRNG(55)
	a := make([]float64, 40)
	b := make([]float64, 30)
	for i := range a {
		a[i] = g.Float64()
	}
	for i := range b {
		b[i] = g.Float64() * 2
	}
	d1, _ := KolmogorovSmirnov(a, b)
	d2, _ := KolmogorovSmirnov(b, a)
	if math.Abs(d1-d2) > 1e-12 {
		t.Errorf("KS not symmetric: %g vs %g", d1, d2)
	}
}
