package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divides by n), or 0
// for fewer than two values. The population form matches the paper's
// use of variance as an aggregation over a fixed set of pairwise
// distances rather than a sample estimate.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It returns 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It returns 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for an
// empty input or q outside [0,1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: Quantile q=%g outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Summary bundles the descriptive statistics shown in FaiRank's
// per-partition Node box (Figure 3 of the paper).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	med, _ := Quantile(xs, 0.5)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: med,
	}
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}
