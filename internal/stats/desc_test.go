package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant variance = %g, want 0", got)
	}
	// Population variance of {1,2,3,4} = 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); math.Abs(got-1.25) > 1e-12 {
		t.Errorf("Variance = %g, want 1.25", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("single-element variance = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max wrong: %g %g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("q<0 should error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q>1 should error")
	}
	if _, err := Quantile([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN q should error")
	}
}

func TestQuantileSingleton(t *testing.T) {
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Errorf("singleton quantile: %g, %v", got, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0, 1, 2, 3, 4})
	if s.N != 5 || s.Mean != 2 || s.Min != 0 || s.Max != 4 || s.Median != 2 {
		t.Errorf("bad summary: %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary should have N=0")
	}
	if s.String() == "" {
		t.Error("Summary.String should be non-empty")
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	g := NewRNG(123)
	f := func(n uint8) bool {
		m := int(n%50) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = g.Float64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
