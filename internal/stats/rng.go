// Package stats provides deterministic random number generation,
// probability distributions, and descriptive statistics.
//
// It is the numerical substrate for the marketplace simulator
// (internal/marketplace) and for rank-based fairness quantification.
// All randomness in the repository flows through RNG so that every
// experiment, example, and benchmark is reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic pseudo-random number generator seeded from a
// single uint64. Two RNGs created with the same seed produce identical
// streams. RNG is not safe for concurrent use; create one per goroutine.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed. The same seed always yields
// the same stream.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Split derives a new independent RNG from this one. It is used to give
// each generated column or worker its own stream so that adding a new
// attribute does not perturb the values of existing ones.
func (g *RNG) Split() *RNG {
	return NewRNG(g.r.Uint64())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform integer in [0,n). It panics if n <= 0,
// matching math/rand/v2 semantics.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Perm returns a pseudo-random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Uniform returns a uniform value in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// TruncNormal returns a normal(mu, sigma) value rejection-sampled into
// [lo,hi]. If the acceptance region is far in the tail it falls back to
// clamping after a bounded number of attempts, which keeps generation
// O(1) while preserving the distribution shape in all practical
// configurations.
func (g *RNG) TruncNormal(mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		v := g.Normal(mu, sigma)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(hi, math.Max(lo, mu))
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang
// method. It panics if shape <= 0.
func (g *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic(fmt.Sprintf("stats: Gamma shape must be positive, got %g", shape))
	}
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^{1/a}.
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(a, b) variate in [0,1]. It panics if a or b is
// not positive.
func (g *RNG) Beta(a, b float64) float64 {
	x := g.Gamma(a)
	y := g.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Categorical returns an index in [0,len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a
// positive sum; otherwise an error is returned.
func (g *RNG) Categorical(weights []float64) (int, error) {
	if len(weights) == 0 {
		return 0, fmt.Errorf("stats: Categorical requires at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return 0, fmt.Errorf("stats: Categorical weight %d is invalid: %g", i, w)
		}
		total += w
	}
	if total <= 0 {
		return 0, fmt.Errorf("stats: Categorical weights sum to %g, need > 0", total)
	}
	target := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}
