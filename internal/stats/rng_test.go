package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiverge(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := NewRNG(7)
	c1 := g.Split()
	c2 := g.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Fatal("split children look identical")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) produced %g", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 2000; i++ {
		v := g.TruncNormal(0.5, 0.2, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("TruncNormal escaped bounds: %g", v)
		}
	}
}

func TestTruncNormalFarTailClamps(t *testing.T) {
	g := NewRNG(13)
	v := g.TruncNormal(100, 0.001, 0, 1)
	if v != 1 {
		t.Fatalf("far-tail TruncNormal should clamp to hi, got %g", v)
	}
}

func TestTruncNormalSwappedBounds(t *testing.T) {
	g := NewRNG(17)
	v := g.TruncNormal(0.5, 0.1, 1, 0) // lo > hi is tolerated
	if v < 0 || v > 1 {
		t.Fatalf("TruncNormal with swapped bounds escaped: %g", v)
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(5)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(2, 3)
	}
	if m := Mean(xs); math.Abs(m-2) > 0.1 {
		t.Errorf("Normal mean: got %g want ~2", m)
	}
	if sd := StdDev(xs); math.Abs(sd-3) > 0.1 {
		t.Errorf("Normal sd: got %g want ~3", sd)
	}
}

func TestBetaMoments(t *testing.T) {
	g := NewRNG(9)
	a, b := 2.0, 5.0
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Beta(a, b)
		if xs[i] < 0 || xs[i] > 1 {
			t.Fatalf("Beta sample outside [0,1]: %g", xs[i])
		}
	}
	wantMean := a / (a + b)
	if m := Mean(xs); math.Abs(m-wantMean) > 0.01 {
		t.Errorf("Beta mean: got %g want ~%g", m, wantMean)
	}
}

func TestBetaShapeBelowOne(t *testing.T) {
	g := NewRNG(21)
	for i := 0; i < 1000; i++ {
		v := g.Beta(0.5, 0.5)
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("Beta(0.5,0.5) invalid sample %g", v)
		}
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gamma(0) should panic")
		}
	}()
	NewRNG(1).Gamma(0)
}

func TestCategorical(t *testing.T) {
	g := NewRNG(31)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		k, err := g.Categorical(w)
		if err != nil {
			t.Fatal(err)
		}
		counts[k]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio: got %g want ~3", ratio)
	}
}

func TestCategoricalErrors(t *testing.T) {
	g := NewRNG(1)
	if _, err := g.Categorical(nil); err == nil {
		t.Error("empty weights should error")
	}
	if _, err := g.Categorical([]float64{0, 0}); err == nil {
		t.Error("all-zero weights should error")
	}
	if _, err := g.Categorical([]float64{1, -1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := g.Categorical([]float64{1, math.NaN()}); err == nil {
		t.Error("NaN weight should error")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := NewRNG(2)
	p := g.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBetaAlwaysInUnitIntervalQuick(t *testing.T) {
	g := NewRNG(99)
	f := func(a, b uint8) bool {
		sa := 0.1 + float64(a%40)/10
		sb := 0.1 + float64(b%40)/10
		v := g.Beta(sa, sb)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
