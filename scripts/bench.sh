#!/usr/bin/env sh
# Runs the benchmark suite with -benchmem and emits a BENCH_*.json
# data point (see tools/benchjson). Knobs:
#
#   OUT       output file            (default BENCH_PR10.json)
#   PATTERN   -bench regexp          (default the hot-path set + the mitigation loop + the batch audit)
#   BENCHTIME -benchtime             (default 2x; use e.g. 1s for stable numbers)
#   PKGS      packages to benchmark  (default ./...)
set -eu

OUT=${OUT:-BENCH_PR10.json}
PATTERN=${PATTERN:-'BenchmarkAudit|BenchmarkQuantify|BenchmarkMitigate|BenchmarkExposureLP|BenchmarkMTable|BenchmarkSplit|BenchmarkSplittableAttrs|BenchmarkGroupKey|BenchmarkHistogram|BenchmarkHatEMD|BenchmarkE11EMD'}
BENCHTIME=${BENCHTIME:-2x}
PKGS=${PKGS:-./...}

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$tmp"
go run ./tools/benchjson "results=$tmp" > "$OUT"
echo "wrote $OUT"
