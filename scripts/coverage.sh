#!/usr/bin/env sh
# Coverage gate for the subsystems whose correctness the audit loop
# leans on. Prints the full per-function coverage report for visibility
# (non-blocking), then fails the build if a package's total statement
# coverage regresses below its floor.
#
# Floors are set a few points under the measured coverage at the time
# the gate was added (audit 93.9%, mitigate 91.7%, auditstore 87.3%,
# faultinject 100%), so honest churn passes but a test-free feature
# drop does not. The mitigate floor also guards the FA*IR exact
# model-adjustment tables (mtable.go): the joint-failure DP and the
# alpha binary search must stay >= 85% covered. Override per package:
#
#   FLOOR_AUDIT=80 FLOOR_MITIGATE=80 FLOOR_AUDITSTORE=80 \
#   FLOOR_FAULTINJECT=80 sh scripts/coverage.sh
set -eu

FLOOR_AUDIT=${FLOOR_AUDIT:-88}
FLOOR_MITIGATE=${FLOOR_MITIGATE:-85}
FLOOR_AUDITSTORE=${FLOOR_AUDITSTORE:-85}
FLOOR_FAULTINJECT=${FLOOR_FAULTINJECT:-80}
FLOOR_OBSV=${FLOOR_OBSV:-85}
# The exposure LP + Birkhoff–von-Neumann subsystem underpins the only
# stochastic strategy; its property tests (constraint satisfaction,
# convex reconstruction, determinism) measured 95% when the gate was
# added.
FLOOR_EXPOSURE=${FLOOR_EXPOSURE:-85}

fail=0

check() {
	pkg=$1
	floor=$2
	profile=$(mktemp)
	go test -coverprofile="$profile" "$pkg" >/dev/null
	echo "== coverage report: $pkg =="
	go tool cover -func="$profile"
	total=$(go tool cover -func="$profile" | awk '/^total:/ { sub("%", "", $3); print $3 }')
	rm -f "$profile"
	if awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 < f+0) }'; then
		echo "FAIL: $pkg coverage ${total}% is below the ${floor}% floor" >&2
		fail=1
	else
		echo "OK: $pkg coverage ${total}% (floor ${floor}%)"
	fi
	echo
}

check ./internal/audit "$FLOOR_AUDIT"
check ./internal/mitigate "$FLOOR_MITIGATE"
check ./internal/mitigate/exposure "$FLOOR_EXPOSURE"
check ./internal/auditstore "$FLOOR_AUDITSTORE"
check ./internal/faultinject "$FLOOR_FAULTINJECT"
check ./internal/obsv "$FLOOR_OBSV"

exit "$fail"
