#!/usr/bin/env sh
# Godoc hygiene gate: every package must open with a doc comment.
# Library packages follow the godoc convention — a comment starting
# "Package <name>" in some non-test file — so `go doc repro/...` always
# has a synopsis; main packages (commands, examples, tools) must carry
# a doc comment immediately above their package clause describing what
# the binary does. docs/ARCHITECTURE.md is generated from nothing and
# rots silently, so the package comments are the layer of record; this
# gate keeps them from being dropped in refactors.
set -eu

cd "$(dirname "$0")/.."

fail=0
for spec in $(go list -f '{{.Name}}:{{.Dir}}' ./...); do
	name=${spec%%:*}
	dir=${spec#*:}
	if [ "$name" != "main" ]; then
		# godoc synopsis convention, in any non-test file.
		if ! grep -l "^// Package $name " "$dir"/*.go 2>/dev/null \
			| grep -qv '_test\.go$'; then
			echo "FAIL: package $name ($dir) has no '// Package $name ...' doc comment" >&2
			fail=1
		fi
		continue
	fi
	# Commands: some non-test file must have a comment line directly
	# above its package clause.
	ok=0
	for f in "$dir"/*.go; do
		case "$f" in *_test.go) continue ;; esac
		[ -e "$f" ] || continue
		if awk '
			/^package / { if (prev ~ /^\/\// || prev ~ /\*\/[[:space:]]*$/) found = 1; exit }
			{ prev = $0 }
			END { exit found ? 0 : 1 }
		' "$f"; then
			ok=1
			break
		fi
	done
	if [ "$ok" -eq 0 ]; then
		echo "FAIL: command package at $dir has no doc comment above its package clause" >&2
		fail=1
	fi
done

if [ "$fail" -eq 0 ]; then
	echo "OK: every package carries a doc comment"
fi
exit "$fail"
