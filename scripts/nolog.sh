#!/usr/bin/env sh
# Logging hygiene gate: library and serving code under internal/ must
# not print to stdout/stderr directly. Observability goes through the
# structured logger (log/slog, injected via server.WithLogger) or the
# metrics registry (internal/obsv) — fmt.Print* and the bare stdlib
# log package bypass both, lose the per-request ID, and garble SSE
# streams. Test files are exempt (t.Log exists, but table-driven
# debugging is allowed its printfs).
set -eu

cd "$(dirname "$0")/.."

# fmt.Print/Printf/Println and log.Print/Printf/Println/Fatal*/Panic*.
# "slog." and "s.log" don't match: the pattern requires a word
# boundary before fmt/log.
pattern='\b(fmt\.Print(ln|f)?|log\.(Print(ln|f)?|Fatal(ln|f)?|Panic(ln|f)?))\('

bad=$(grep -rEn "$pattern" internal/ --include='*.go' \
	| grep -v '_test\.go:' || true)

if [ -n "$bad" ]; then
	echo "forbidden print/log calls in internal/ (use log/slog or the obsv registry):" >&2
	echo "$bad" >&2
	exit 1
fi
echo "OK: no fmt.Print*/log.Print* in internal/ non-test files"
