// Command benchjson converts `go test -bench -benchmem` output into
// the JSON benchmark records committed as BENCH_*.json, the per-PR
// performance trajectory of the repository (ns/op, B/op, allocs/op and
// any custom metrics per benchmark).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./tools/benchjson > BENCH_PRn.json
//	go run ./tools/benchjson baseline=old.txt after=new.txt > BENCH_PRn.json
//
// With no arguments the tool reads one run from stdin into a section
// named "results". Each argument names a section and a file of raw
// benchmark output, letting one JSON file carry before/after pairs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// metrics holds one benchmark's parsed measurements.
type metrics struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// report is the emitted document.
type report struct {
	CPU      string                        `json:"cpu,omitempty"`
	Go       string                        `json:"go,omitempty"`
	Sections map[string]map[string]metrics `json:"sections"`
}

func main() {
	rep := report{Sections: make(map[string]map[string]metrics)}
	if len(os.Args) < 2 {
		parse(os.Stdin, "results", &rep)
	} else {
		for _, arg := range os.Args[1:] {
			label, path, ok := strings.Cut(arg, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: argument %q is not label=path\n", arg)
				os.Exit(2)
			}
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			parse(f, label, &rep)
			f.Close()
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans raw `go test -bench` output into one section.
func parse(r io.Reader, label string, rep *report) {
	section := rep.Sections[label]
	if section == nil {
		section = make(map[string]metrics)
		rep.Sections[label] = section
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Go = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := metrics{Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = ptr(v)
			case "allocs/op":
				m.AllocsOp = ptr(v)
			default:
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[unit] = v
			}
		}
		section[fields[0]] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func ptr(v float64) *float64 { return &v }
