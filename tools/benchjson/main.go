// Command benchjson converts `go test -bench -benchmem` output into
// the JSON benchmark records committed as BENCH_*.json, the per-PR
// performance trajectory of the repository (ns/op, B/op, allocs/op and
// any custom metrics per benchmark).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./tools/benchjson > BENCH_PRn.json
//	go run ./tools/benchjson baseline=old.txt after=new.txt > BENCH_PRn.json
//
// With no arguments the tool reads one run from stdin into a section
// named "results". Each argument names a section and a file of raw
// benchmark output, letting one JSON file carry before/after pairs.
//
// Gate mode compares a candidate JSON record against a committed
// baseline and exits non-zero on regression — the CI perf gate:
//
//	go run ./tools/benchjson -gate -baseline BENCH_PR4.json -candidate bench-pr.json \
//	    -match 'BenchmarkQuantify|BenchmarkMitigate|BenchmarkAudit' \
//	    -max-time-regression 25 -max-alloc-regression 30
//
// Only benchmarks present in BOTH files (and matching -match, when
// set) are gated, so adding a benchmark — or a machine-dependent
// sub-benchmark name like workers=GOMAXPROCS — never breaks the gate;
// baseline-only names are printed as notes, and a gate that ends up
// comparing zero benchmarks fails rather than passing vacuously.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics holds one benchmark's parsed measurements.
type metrics struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp *float64           `json:"bytes_per_op,omitempty"`
	AllocsOp   *float64           `json:"allocs_per_op,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// report is the emitted document.
type report struct {
	CPU      string                        `json:"cpu,omitempty"`
	Go       string                        `json:"go,omitempty"`
	Sections map[string]map[string]metrics `json:"sections"`
}

func main() {
	gate := flag.Bool("gate", false, "compare -candidate against -baseline and exit 1 on regression")
	baselinePath := flag.String("baseline", "", "gate mode: committed baseline JSON (e.g. BENCH_PR4.json)")
	candidatePath := flag.String("candidate", "", "gate mode: freshly recorded JSON to check")
	section := flag.String("section", "results", "gate mode: section to compare in both files")
	match := flag.String("match", "", "gate mode: regexp of benchmark names to gate (empty = all shared names)")
	maxTime := flag.Float64("max-time-regression", 25, "gate mode: max allowed ns/op increase, percent")
	maxAlloc := flag.Float64("max-alloc-regression", 30, "gate mode: max allowed allocs/op increase, percent")
	flag.Parse()

	if *gate {
		if err := runGate(*baselinePath, *candidatePath, *section, *match, *maxTime, *maxAlloc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	rep := report{Sections: make(map[string]map[string]metrics)}
	if flag.NArg() == 0 {
		parse(os.Stdin, "results", &rep)
	} else {
		for _, arg := range flag.Args() {
			label, path, ok := strings.Cut(arg, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: argument %q is not label=path\n", arg)
				os.Exit(2)
			}
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
			parse(f, label, &rep)
			f.Close()
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans raw `go test -bench` output into one section.
func parse(r io.Reader, label string, rep *report) {
	section := rep.Sections[label]
	if section == nil {
		section = make(map[string]metrics)
		rep.Sections[label] = section
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Go = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := metrics{Iterations: iters}
		// Remaining fields come in (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = ptr(v)
			case "allocs/op":
				m.AllocsOp = ptr(v)
			default:
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[unit] = v
			}
		}
		section[fields[0]] = m
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func ptr(v float64) *float64 { return &v }

// loadSection reads one section of a benchjson record from disk.
func loadSection(path, section string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("decoding %s: %w", path, err)
	}
	s, ok := rep.Sections[section]
	if !ok {
		names := make([]string, 0, len(rep.Sections))
		for n := range rep.Sections {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("%s has no section %q (sections: %s)", path, section, strings.Join(names, ", "))
	}
	return s, nil
}

// gomaxprocsSuffix is the "-N" go test appends to benchmark names
// when GOMAXPROCS != 1. A baseline recorded on a 1-CPU box has bare
// names while a multi-core CI runner emits "-4"-suffixed ones; gate
// mode strips the suffix from both sides so the comparison keys on
// the benchmark, not the recording machine's core count.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// stripProcs normalizes a record's benchmark names for gating. On
// the (contrived) chance stripping collides two names, the first
// shortest-name entry wins deterministically.
func stripProcs(section map[string]metrics) map[string]metrics {
	out := make(map[string]metrics, len(section))
	names := make([]string, 0, len(section))
	for name := range section {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		key := gomaxprocsSuffix.ReplaceAllString(name, "")
		if _, ok := out[key]; !ok {
			out[key] = section[name]
		}
	}
	return out
}

// runGate loads the two records and fails on regression.
func runGate(baselinePath, candidatePath, section, match string, maxTime, maxAlloc float64, out io.Writer) error {
	if baselinePath == "" || candidatePath == "" {
		return fmt.Errorf("gate mode needs -baseline and -candidate")
	}
	base, err := loadSection(baselinePath, section)
	if err != nil {
		return err
	}
	cand, err := loadSection(candidatePath, section)
	if err != nil {
		return err
	}
	base, cand = stripProcs(base), stripProcs(cand)
	var re *regexp.Regexp
	if match != "" {
		re, err = regexp.Compile(match)
		if err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}
	failures := gateCompare(base, cand, re, maxTime, maxAlloc, out)
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond the thresholds (time +%.0f%%, allocs +%.0f%%)", failures, maxTime, maxAlloc)
	}
	return nil
}

// gateCompare prints a comparison table of every gated benchmark and
// returns how many failed. Gated names are the intersection of the
// two records (filtered by re): sub-benchmark names can embed
// machine-dependent values (e.g. workers=GOMAXPROCS), so a
// baseline-only name is a visible note rather than a failure.
func gateCompare(base, cand map[string]metrics, re *regexp.Regexp, maxTime, maxAlloc float64, out io.Writer) int {
	names := make([]string, 0, len(base))
	for name := range base {
		if re == nil || re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	pct := func(baseV, candV float64) float64 {
		if baseV == 0 {
			if candV == 0 {
				return 0
			}
			return 1e9 // zero-to-nonzero: treat as unbounded regression
		}
		return (candV - baseV) / baseV * 100
	}

	failures, gated := 0, 0
	for _, name := range names {
		b := base[name]
		c, ok := cand[name]
		if !ok {
			fmt.Fprintf(out, "note %-60s not in candidate (machine-dependent name?), not gated\n", name)
			continue
		}
		gated++
		timeDelta := pct(b.NsPerOp, c.NsPerOp)
		status, detail := "ok  ", fmt.Sprintf("time %+7.1f%%", timeDelta)
		fail := timeDelta > maxTime
		if b.AllocsOp != nil && c.AllocsOp != nil {
			allocDelta := pct(*b.AllocsOp, *c.AllocsOp)
			detail += fmt.Sprintf("  allocs %+7.1f%%", allocDelta)
			if allocDelta > maxAlloc {
				fail = true
			}
		}
		if fail {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(out, "%s %-60s %s\n", status, name, detail)
	}

	extra := 0
	for name := range cand {
		if _, ok := base[name]; !ok && (re == nil || re.MatchString(name)) {
			extra++
		}
	}
	if extra > 0 {
		fmt.Fprintf(out, "note: %d new benchmark(s) not in the baseline (not gated)\n", extra)
	}
	if gated == 0 {
		// An empty intersection means the gate checked nothing — fail
		// loudly instead of green-lighting by accident.
		fmt.Fprintln(out, "FAIL gate compared zero benchmarks (bad -match or disjoint records)")
		return 1
	}
	return failures
}
