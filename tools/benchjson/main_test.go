package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func m(ns float64, allocs float64) metrics {
	return metrics{Iterations: 1, NsPerOp: ns, AllocsOp: ptr(allocs)}
}

// The acceptance scenario: an injected 2× slowdown on a gated
// benchmark fails the gate; the same record within thresholds passes.
func TestGateFailsOnInjectedSlowdown(t *testing.T) {
	base := map[string]metrics{
		"BenchmarkQuantify/cold": m(100e6, 70000),
		"BenchmarkAudit/seq":     m(200e6, 500000),
		"BenchmarkE11EMD/x":      m(1000, 5),
	}
	re := regexp.MustCompile(`BenchmarkQuantify|BenchmarkMitigate|BenchmarkAudit`)

	var out bytes.Buffer
	ok := map[string]metrics{
		"BenchmarkQuantify/cold": m(110e6, 72000), // +10% time, +2.9% allocs
		"BenchmarkAudit/seq":     m(190e6, 510000),
		"BenchmarkE11EMD/x":      m(5000, 5), // 5× slower but not gated by -match
	}
	if got := gateCompare(base, ok, re, 25, 30, &out); got != 0 {
		t.Errorf("within-threshold run failed the gate (%d failures):\n%s", got, out.String())
	}

	out.Reset()
	slow := map[string]metrics{
		"BenchmarkQuantify/cold": m(200e6, 70000), // injected 2× slowdown
		"BenchmarkAudit/seq":     m(200e6, 500000),
	}
	if got := gateCompare(base, slow, re, 25, 30, &out); got != 1 {
		t.Errorf("2× slowdown produced %d failures, want 1:\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "FAIL BenchmarkQuantify/cold") {
		t.Errorf("gate output does not name the regressed benchmark:\n%s", out.String())
	}
}

func TestGateAllocRegression(t *testing.T) {
	base := map[string]metrics{"BenchmarkMitigate/x": m(100, 1000)}
	cand := map[string]metrics{"BenchmarkMitigate/x": m(100, 1400)} // +40% allocs
	var out bytes.Buffer
	if got := gateCompare(base, cand, nil, 25, 30, &out); got != 1 {
		t.Errorf("+40%% allocs produced %d failures, want 1:\n%s", got, out.String())
	}
}

// Machine-dependent sub-benchmark names (workers=GOMAXPROCS) differ
// between the baseline recorder and CI: baseline-only names must not
// fail the gate, but a gate that matches nothing at all must.
func TestGateIntersectionSemantics(t *testing.T) {
	base := map[string]metrics{
		"BenchmarkAudit/parallel/workers=1": m(100, 10),
		"BenchmarkAudit/sequential":         m(100, 10),
	}
	cand := map[string]metrics{
		"BenchmarkAudit/parallel/workers=4": m(100, 10),
		"BenchmarkAudit/sequential":         m(90, 10),
	}
	var out bytes.Buffer
	if got := gateCompare(base, cand, nil, 25, 30, &out); got != 0 {
		t.Errorf("differing machine-dependent names failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Errorf("baseline-only name not surfaced as a note:\n%s", out.String())
	}

	out.Reset()
	re := regexp.MustCompile(`BenchmarkNothingMatchesThis`)
	if got := gateCompare(base, cand, re, 25, 30, &out); got == 0 {
		t.Error("gate passed while comparing zero benchmarks")
	}
}

// Zero-to-nonzero allocation growth is an unbounded regression, not a
// divide-by-zero pass.
func TestGateZeroBaseline(t *testing.T) {
	base := map[string]metrics{"BenchmarkX": m(100, 0)}
	cand := map[string]metrics{"BenchmarkX": m(100, 50)}
	var out bytes.Buffer
	if got := gateCompare(base, cand, nil, 25, 30, &out); got != 1 {
		t.Errorf("0 -> 50 allocs produced %d failures, want 1:\n%s", got, out.String())
	}
}

// A baseline recorded at GOMAXPROCS=1 (bare names) must gate against
// a multi-core candidate ("-4" suffixes) — the exact CI-runner
// topology mismatch — including catching a regression across it.
func TestGateStripsGomaxprocsSuffix(t *testing.T) {
	write := func(t *testing.T, dir, name string, sec map[string]metrics) string {
		t.Helper()
		buf, err := json.Marshal(report{Sections: map[string]map[string]metrics{"results": sec}})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	dir := t.TempDir()
	basePath := write(t, dir, "base.json", map[string]metrics{
		"BenchmarkQuantify/sequential": m(100e6, 70000),
		"BenchmarkAudit/sequential":    m(200e6, 500000),
	})
	okPath := write(t, dir, "ok.json", map[string]metrics{
		"BenchmarkQuantify/sequential-4": m(105e6, 70000),
		"BenchmarkAudit/sequential-4":    m(195e6, 500000),
	})
	slowPath := write(t, dir, "slow.json", map[string]metrics{
		"BenchmarkQuantify/sequential-4": m(200e6, 70000), // 2× slowdown
		"BenchmarkAudit/sequential-4":    m(195e6, 500000),
	})
	var out bytes.Buffer
	if err := runGate(basePath, okPath, "results", "", 25, 30, &out); err != nil {
		t.Errorf("suffix mismatch alone failed the gate: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := runGate(basePath, slowPath, "results", "", 25, 30, &out); err == nil {
		t.Errorf("2× slowdown hidden by the suffix mismatch:\n%s", out.String())
	}
}

// Names whose trailing token is not a procs suffix are untouched.
func TestStripProcs(t *testing.T) {
	in := map[string]metrics{
		"BenchmarkE11EMD/closed/bins=10": m(1, 1), // "=10" is data, not procs
		"BenchmarkQuantify/sequential-8": m(2, 2),
	}
	got := stripProcs(in)
	if _, ok := got["BenchmarkE11EMD/closed/bins=10"]; !ok {
		t.Errorf("data-bearing name mangled: %v", got)
	}
	if _, ok := got["BenchmarkQuantify/sequential"]; !ok {
		t.Errorf("procs suffix not stripped: %v", got)
	}
}

// End-to-end through runGate: real files, real sections, exit error.
func TestRunGateFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		rep := report{Sections: map[string]map[string]metrics{
			"results": {"BenchmarkQuantify/cold": m(ns, 1000)},
		}}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", 100e6)
	okPath := write("ok.json", 105e6)
	slowPath := write("slow.json", 200e6)

	var out bytes.Buffer
	if err := runGate(basePath, okPath, "results", "", 25, 30, &out); err != nil {
		t.Errorf("within-threshold gate errored: %v\n%s", err, out.String())
	}
	if err := runGate(basePath, slowPath, "results", "", 25, 30, &out); err == nil {
		t.Error("2× slowdown gate did not error")
	}
	if err := runGate(basePath, slowPath, "nope", "", 25, 30, &out); err == nil {
		t.Error("missing section accepted")
	}
	if err := runGate("", okPath, "results", "", 25, 30, &out); err == nil {
		t.Error("missing -baseline accepted")
	}
	if err := runGate(basePath, okPath, "results", "(", 25, 30, &out); err == nil {
		t.Error("bad -match regexp accepted")
	}
	if err := runGate(filepath.Join(dir, "missing.json"), okPath, "results", "", 25, 30, &out); err == nil {
		t.Error("missing baseline file accepted")
	}
}

// The parser handles the real `go test -bench -benchmem` line format,
// including custom metrics.
func TestParse(t *testing.T) {
	raw := `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkQuantify/cold-4   	      12	  99000000 ns/op	 8000000 B/op	   70000 allocs/op
BenchmarkCustom            	     100	      1234 ns/op	       5.5 widgets/op
not a benchmark line
`
	rep := report{Sections: make(map[string]map[string]metrics)}
	parse(strings.NewReader(raw), "results", &rep)
	s := rep.Sections["results"]
	q, ok := s["BenchmarkQuantify/cold-4"]
	if !ok {
		t.Fatalf("parsed names: %v", s)
	}
	if q.NsPerOp != 99000000 || q.AllocsOp == nil || *q.AllocsOp != 70000 {
		t.Errorf("parsed metrics %+v", q)
	}
	c := s["BenchmarkCustom"]
	if c.Extra["widgets/op"] != 5.5 {
		t.Errorf("custom metric not parsed: %+v", c)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu line not captured: %q", rep.CPU)
	}
}
