// Command loadgen replays a deterministic mixed request trace —
// quantify, batch audit and SSE audit stream — against an in-process
// fairankd server and reports per-route p50/p99 latency, throughput
// and shed counts into BENCH_LOAD.json, the serving-side counterpart
// of the BENCH_PR*.json microbench trajectory.
//
// The trace is seed-driven: a given (-seed, -requests) pair always
// issues the same operation sequence with the same parameters, so two
// runs differ only in measured latency. Admission limits are real
// (the server sheds with 429 under the configured -max-heavy), which
// makes shed counts part of the result rather than noise:
//
//	go run ./tools/loadgen -requests 200 -clients 8 -out BENCH_LOAD.json
//
// The run scrapes GET /api/health before and after the trace and
// embeds the server-side counter deltas as "server_metrics" in the
// output — then cross-checks them against the client-side tallies
// (every response the clients saw must appear in
// fairankd_requests_total, shed for shed, status for status) and
// fails loudly on any mismatch: the load test doubles as an
// end-to-end proof that the metrics pipeline counts what happened.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obsv"
	"repro/internal/server"
)

// op is one trace entry: a route plus the JSON body or query string
// the seeded generator chose for it.
type op struct {
	route string // "quantify", "audit", "stream"
	body  any    // POST body (quantify, audit)
	query string // query string (stream)
}

// routeStats aggregates one route's measured outcomes. byStatus
// tallies responses per HTTP status; transport counts requests that
// died without a response (no server-side counterpart, so the
// cross-check excludes them).
type routeStats struct {
	Count     int     `json:"count"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	latencies []time.Duration
	byStatus  map[int]int
	transport int
}

// result is the BENCH_LOAD.json schema.
type result struct {
	Requests      int                    `json:"requests"`
	Clients       int                    `json:"clients"`
	Seed          uint64                 `json:"seed"`
	MaxHeavy      int                    `json:"max_heavy"`
	ElapsedMs     float64                `json:"elapsed_ms"`
	ThroughputRPS float64                `json:"throughput_rps"`
	Routes        map[string]*routeStats `json:"routes"`
	Health        server.Health          `json:"health"`
	// ServerMetrics holds the scraped counter deltas (after - before
	// the trace), keyed by full series name.
	ServerMetrics map[string]uint64 `json:"server_metrics"`
}

// healthScrape mirrors the GET /api/health response: the health
// fields plus the full registry snapshot.
type healthScrape struct {
	server.Health
	Metrics obsv.Snapshot `json:"metrics"`
}

// scrape pulls one health+metrics snapshot off the running server.
func scrape(base string) (*healthScrape, error) {
	res, err := http.Get(base + "/api/health")
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: health scrape returned %d", res.StatusCode)
	}
	var hs healthScrape
	if err := json.NewDecoder(res.Body).Decode(&hs); err != nil {
		return nil, fmt.Errorf("loadgen: decoding health scrape: %w", err)
	}
	return &hs, nil
}

// counterDeltas subtracts the pre-trace counter snapshot from the
// post-trace one, dropping zero deltas.
func counterDeltas(before, after obsv.Snapshot) map[string]uint64 {
	out := make(map[string]uint64)
	for name, v := range after.Counters {
		if d := v - before.Counters[name]; d > 0 {
			out[name] = d
		}
	}
	return out
}

// serverRoute maps a trace route to the server's route label.
var serverRoute = map[string]string{
	"quantify": "quantify",
	"audit":    "audit",
	"stream":   "audit_stream",
}

// crossCheck compares what the clients observed with what the server
// counted. Every (route, status) pair must match exactly: the clients
// and fairankd_requests_total are two independent tallies of the same
// requests, so any drift is a metrics bug. Returns the list of
// mismatches (empty = consistent).
func crossCheck(stats map[string]*routeStats, delta map[string]uint64) []string {
	var problems []string

	// Shed totals: client-side 429s vs fairankd_shed_total.
	client429 := 0
	for _, st := range stats {
		client429 += st.byStatus[http.StatusTooManyRequests]
	}
	var serverShed uint64
	for name, d := range delta {
		if strings.HasPrefix(name, "fairankd_shed_total") {
			serverShed += d
		}
	}
	if uint64(client429) != serverShed {
		problems = append(problems, fmt.Sprintf(
			"shed mismatch: clients saw %d 429s, server counted %d in fairankd_shed_total", client429, serverShed))
	}

	// Per-(route, status) counts vs fairankd_requests_total.
	for clientRoute, st := range stats {
		route := serverRoute[clientRoute]
		serverByStatus := make(map[int]uint64)
		for name, d := range delta {
			if !strings.HasPrefix(name, "fairankd_requests_total{") ||
				!strings.Contains(name, fmt.Sprintf("route=%q", route)) {
				continue
			}
			rest := name[strings.Index(name, `code="`)+len(`code="`):]
			var code int
			if _, err := fmt.Sscanf(rest[:strings.IndexByte(rest, '"')], "%d", &code); err != nil {
				problems = append(problems, fmt.Sprintf("unparseable series %q", name))
				continue
			}
			serverByStatus[code] += d
		}
		for code, n := range st.byStatus {
			if uint64(n) != serverByStatus[code] {
				problems = append(problems, fmt.Sprintf(
					"route %s status %d: clients saw %d, server counted %d", route, code, n, serverByStatus[code]))
			}
		}
		for code, n := range serverByStatus {
			if _, seen := st.byStatus[code]; !seen && n > 0 {
				problems = append(problems, fmt.Sprintf(
					"route %s status %d: server counted %d, clients saw none", route, code, n))
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// splitmix64 is the trace's seeded stream (same generator the
// fault-injection harness uses), so the operation sequence is a pure
// function of the seed.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *splitmix64) intn(n int) int { return int(r.next() % uint64(n)) }

// buildTrace generates the deterministic operation sequence: ~60%
// quantify (rotating scoring functions and attribute subsets so the
// cache sees a realistic hit/miss mix), ~25% blocking audits and ~15%
// audit streams over small preset marketplaces.
func buildTrace(requests int, seed uint64) []op {
	rng := &splitmix64{s: seed}
	functions := []string{
		"0.3*language_test + 0.7*rating",
		"0.5*language_test + 0.5*rating",
		"rating",
		"language_test",
	}
	attrSets := [][]string{nil, {"gender"}, {"gender", "language"}, {"ethnicity"}}
	presets := []string{"crowdsourcing", "taskrabbit"}
	ops := make([]op, requests)
	for i := range ops {
		switch roll := rng.intn(100); {
		case roll < 60:
			ops[i] = op{route: "quantify", body: core.PanelRequest{
				Dataset:    "table1",
				Function:   functions[rng.intn(len(functions))],
				Attributes: attrSets[rng.intn(len(attrSets))],
			}}
		case roll < 85:
			ops[i] = op{route: "audit", body: map[string]any{
				"Preset":   presets[rng.intn(len(presets))],
				"N":        100 + 20*rng.intn(4),
				"Seed":     1 + uint64(rng.intn(3)),
				"Strategy": "detcons",
				"K":        10,
			}}
		default:
			ops[i] = op{route: "stream", query: fmt.Sprintf(
				"preset=%s&n=%d&seed=%d&strategy=detcons&k=10",
				presets[rng.intn(len(presets))], 100+20*rng.intn(4), 1+rng.intn(3))}
		}
	}
	return ops
}

// run replays the trace over clients concurrent workers and aggregates
// the outcome.
func run(requests, clients, maxHeavy int, seed uint64) (*result, error) {
	sess := core.NewSession()
	if err := sess.AddDataset("table1", dataset.Table1()); err != nil {
		return nil, err
	}
	srv := server.New(sess, server.WithLimits(server.Limits{MaxHeavy: maxHeavy}))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before, err := scrape(ts.URL)
	if err != nil {
		return nil, err
	}

	ops := buildTrace(requests, seed)
	stats := map[string]*routeStats{
		"quantify": {byStatus: map[int]int{}},
		"audit":    {byStatus: map[int]int{}},
		"stream":   {byStatus: map[int]int{}},
	}
	var mu sync.Mutex
	record := func(route string, d time.Duration, status int, err error) {
		mu.Lock()
		defer mu.Unlock()
		st := stats[route]
		st.Count++
		st.latencies = append(st.latencies, d)
		if status != 0 {
			st.byStatus[status]++
		} else {
			st.transport++
		}
		switch {
		case err != nil || status >= 500:
			st.Errors++
		case status == http.StatusTooManyRequests:
			st.Shed++
		}
	}

	work := make(chan op)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range work {
				t0 := time.Now()
				status, err := issue(ts.URL, o)
				record(o.route, time.Since(t0), status, err)
			}
		}()
	}
	for _, o := range ops {
		work <- o
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	after, err := scrape(ts.URL)
	if err != nil {
		return nil, err
	}
	delta := counterDeltas(before.Metrics, after.Metrics)
	if problems := crossCheck(stats, delta); len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "loadgen: metrics cross-check FAILED:", p)
		}
		return nil, fmt.Errorf("loadgen: client tallies and scraped server metrics disagree (%d mismatches)", len(problems))
	}

	for _, st := range stats {
		summarize(st)
	}
	return &result{
		Requests:      requests,
		Clients:       clients,
		Seed:          seed,
		MaxHeavy:      maxHeavy,
		ElapsedMs:     float64(elapsed.Microseconds()) / 1000,
		ThroughputRPS: float64(requests) / elapsed.Seconds(),
		Routes:        stats,
		Health:        srv.Healthz(),
		ServerMetrics: delta,
	}, nil
}

// issue performs one trace operation and returns its HTTP status.
func issue(base string, o op) (int, error) {
	switch o.route {
	case "stream":
		res, err := http.Get(base + "/api/audit/stream?" + o.query)
		if err != nil {
			return 0, err
		}
		defer res.Body.Close()
		_, err = io.Copy(io.Discard, res.Body) // latency includes the full stream
		return res.StatusCode, err
	default:
		buf, err := json.Marshal(o.body)
		if err != nil {
			return 0, err
		}
		res, err := http.Post(base+"/api/"+o.route, "application/json", bytes.NewReader(buf))
		if err != nil {
			return 0, err
		}
		defer res.Body.Close()
		_, err = io.Copy(io.Discard, res.Body)
		return res.StatusCode, err
	}
}

// summarize folds a route's raw latencies into p50/p99/mean.
func summarize(st *routeStats) {
	if len(st.latencies) == 0 {
		return
	}
	sort.Slice(st.latencies, func(a, b int) bool { return st.latencies[a] < st.latencies[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(st.latencies)-1))
		return float64(st.latencies[i].Microseconds()) / 1000
	}
	st.P50Ms = pct(0.50)
	st.P99Ms = pct(0.99)
	var sum time.Duration
	for _, d := range st.latencies {
		sum += d
	}
	st.MeanMs = float64(sum.Microseconds()) / 1000 / float64(len(st.latencies))
	st.latencies = nil
}

func main() {
	requests := flag.Int("requests", 200, "trace length")
	clients := flag.Int("clients", 8, "concurrent client workers")
	maxHeavy := flag.Int("max-heavy", 4, "server's heavy-class admission bound")
	seed := flag.Uint64("seed", 1, "trace seed (same seed = same operation sequence)")
	out := flag.String("out", "BENCH_LOAD.json", "output file (- for stdout)")
	flag.Parse()

	res, err := run(*requests, *clients, *maxHeavy, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	for route, st := range res.Routes {
		fmt.Printf("%-9s count=%-4d shed=%-3d errors=%-3d p50=%.1fms p99=%.1fms\n",
			route, st.Count, st.Shed, st.Errors, st.P50Ms, st.P99Ms)
	}
	fmt.Printf("total     %d requests in %.0fms (%.1f req/s) -> %s\n",
		res.Requests, res.ElapsedMs, res.ThroughputRPS, *out)
}
